//! The RRT\* planner with phase-level cost accounting.

use moped_collision::{CollisionChecker, CollisionLedger};
use moped_env::Scenario;
use moped_geometry::{Config, InterpolationSteps, OpCount};
use moped_obs::{Journal, RejectReason, Stage};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::NeighborIndex;

/// Search strategy executed behind the [`RrtStar`] facade.
///
/// All engines share the node arena, neighbor-index backend, TSPS
/// collision stack, journal recording/replay, and the stop-hook
/// contract; they differ only in how the exploration structure grows.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum Engine {
    /// Single-tree RRT\* (sample → nearest → steer → refine → rewire);
    /// asymptotically optimal, the paper's evaluation engine.
    #[default]
    RrtStar,
    /// Bidirectional RRT-Connect: one tree from the start, one from the
    /// goal, alternating in deterministic swap order, with a greedy
    /// multi-step connect toward every new node. Feasibility-first — it
    /// returns the first path found and performs no rewiring.
    RrtConnect,
    /// RRT-Connect plus local trees seeded in narrow free-space regions
    /// (detected by axis probes at steering-step distance); trees merge
    /// through zero-length bridge links when a connect reaches another
    /// component.
    MultiTree,
}

impl Engine {
    /// Short engine name for reports and bench rows.
    pub fn name(&self) -> &'static str {
        match self {
            Engine::RrtStar => "rrt-star",
            Engine::RrtConnect => "rrt-connect",
            Engine::MultiTree => "multi-tree",
        }
    }

    /// Every engine, in report order.
    pub fn all() -> [Engine; 3] {
        [Engine::RrtStar, Engine::RrtConnect, Engine::MultiTree]
    }
}

/// Planner tuning knobs.
#[derive(Clone, Debug, PartialEq)]
pub struct PlannerParams {
    /// Sampling budget (the paper's evaluation uses 5 000).
    pub max_samples: usize,
    /// Steering step; `None` uses the robot model's default.
    pub steering_step: Option<f64>,
    /// Rewiring-radius scale `gamma` in `r = gamma * (ln n / n)^(1/d)`;
    /// the radius is additionally clamped to `[step, 4*step]`.
    pub rewire_gamma: f64,
    /// Probability of sampling the goal instead of a random point.
    pub goal_bias: f64,
    /// A node within this configuration-space distance of the goal tries
    /// to connect directly.
    pub goal_tolerance: f64,
    /// Collision-check discretization; `None` derives it from the step.
    pub interpolation: Option<InterpolationSteps>,
    /// Random seed for the sampler.
    pub seed: u64,
    /// Record a per-round trace (needed by the hardware pipeline model).
    pub trace_rounds: bool,
}

impl Default for PlannerParams {
    /// Paper-flavoured defaults with a modest 1 000-sample budget (the
    /// figures binary raises this to 5 000).
    fn default() -> Self {
        PlannerParams {
            max_samples: 1000,
            steering_step: None,
            rewire_gamma: 40.0,
            goal_bias: 0.05,
            goal_tolerance: 10.0,
            interpolation: None,
            seed: 0,
            trace_rounds: false,
        }
    }
}

/// Cost trace of one sampling round, in MAC-equivalent operations per
/// phase. The hardware model replays these through the S&R pipeline.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RoundTrace {
    /// Neighbor-search work (nearest + neighborhood queries).
    pub ns_macs: u64,
    /// Collision-check work in the extension phase.
    pub cc_macs: u64,
    /// Tree-refinement (parent choice + rewiring) work, collision checks
    /// included.
    pub refine_macs: u64,
    /// Index-insertion work.
    pub insert_macs: u64,
    /// Whether the sample was accepted into the tree.
    pub accepted: bool,
    /// Size of the neighborhood examined during refinement.
    pub near_count: u32,
}

/// Aggregated statistics of one planning run.
#[derive(Clone, Debug, Default)]
pub struct PlanStats {
    /// Sampling rounds executed.
    pub samples: usize,
    /// Nodes in the exploration tree (accepted samples + start).
    pub nodes: usize,
    /// Neighbor-search arithmetic.
    pub ns_ops: OpCount,
    /// Index-insertion arithmetic.
    pub insert_ops: OpCount,
    /// Steering / cost-bookkeeping arithmetic.
    pub other_ops: OpCount,
    /// Collision-check ledger (both stages, extension + refinement).
    pub collision: CollisionLedger,
    /// Rewire operations that actually changed a parent.
    pub rewires: u64,
    /// Per-round trace (present when requested).
    pub rounds: Vec<RoundTrace>,
    /// Anytime-quality profile: `(sample index, best path cost)` each
    /// time the best known solution improved — RRT\*'s asymptotic
    /// optimality made visible.
    pub solution_history: Vec<(usize, f64)>,
    /// `true` when the run was cut short by a stop hook (deadline or
    /// cancellation) before exhausting its sampling budget; the result
    /// is the best-so-far anytime answer.
    pub stopped_early: bool,
}

impl PlanStats {
    /// Total arithmetic across all phases.
    pub fn total_ops(&self) -> OpCount {
        self.ns_ops + self.insert_ops + self.other_ops + self.collision.total_ops()
    }

    /// Fractional breakdown `(collision, neighbor-search, other)` of
    /// MAC-equivalent work — the Fig 3 pie.
    pub fn breakdown(&self) -> (f64, f64, f64) {
        let cc = self.collision.total_ops().mac_equiv() as f64;
        let ns = self.ns_ops.mac_equiv() as f64;
        let other = (self.insert_ops + self.other_ops).mac_equiv() as f64;
        let total = (cc + ns + other).max(1.0);
        (cc / total, ns / total, other / total)
    }
}

/// The outcome of a planning run.
#[derive(Clone, Debug)]
pub struct PlanResult {
    /// Start-to-goal path (inclusive) if one was found.
    pub path: Option<Vec<Config>>,
    /// Cost (configuration-space length) of the returned path;
    /// `f64::INFINITY` when no path was found.
    pub path_cost: f64,
    /// Run statistics.
    pub stats: PlanStats,
}

impl PlanResult {
    /// Whether a path to the goal was found.
    pub fn solved(&self) -> bool {
        self.path.is_some()
    }
}

#[derive(Clone, Debug)]
pub(crate) struct TreeNode {
    pub(crate) q: Config,
    pub(crate) parent: Option<usize>,
    pub(crate) children: Vec<usize>,
    pub(crate) cost: f64,
}

/// An RRT\* planner instance bound to a scenario.
///
/// Generic over the neighbor index; the collision checker is taken as a
/// trait object so ablations can swap it freely.
pub struct RrtStar<'a, N: NeighborIndex> {
    pub(crate) scenario: &'a Scenario,
    pub(crate) checker: &'a dyn CollisionChecker,
    pub(crate) index: N,
    pub(crate) params: PlannerParams,
    pub(crate) nodes: Vec<TreeNode>,
    pub(crate) steps: InterpolationSteps,
    pub(crate) step: f64,
    engine: Engine,
    rewire_enabled: bool,
    pub(crate) stop_hook: Option<StopHook<'a>>,
    pub(crate) journal_enabled: bool,
    pub(crate) journal: Option<Journal>,
    pub(crate) replay: Option<Replay>,
}

/// Pre-decoded sample stream consumed instead of the RNG when replaying
/// a journal (goal-bias draws are already baked into the stream).
pub(crate) struct Replay {
    pub(crate) samples: Vec<Config>,
    pub(crate) cursor: usize,
}

/// A cooperative-stop predicate polled every `.0` sampling rounds; when
/// it returns `true` the planner abandons the remaining budget and
/// returns its best-so-far anytime result.
pub(crate) type StopHook<'a> = (usize, Box<dyn Fn() -> bool + 'a>);

impl<'a, N: NeighborIndex> RrtStar<'a, N> {
    /// Creates a planner over `scenario` with the given backends.
    pub fn new(
        scenario: &'a Scenario,
        checker: &'a dyn CollisionChecker,
        index: N,
        params: PlannerParams,
    ) -> Self {
        let step = params
            .steering_step
            .unwrap_or_else(|| scenario.robot.steering_step());
        let steps = params
            .interpolation
            .unwrap_or_else(|| InterpolationSteps::with_resolution((step / 4.0).max(1e-3)));
        RrtStar {
            scenario,
            checker,
            index,
            params,
            nodes: Vec::new(),
            steps,
            step,
            engine: Engine::RrtStar,
            rewire_enabled: true,
            stop_hook: None,
            journal_enabled: false,
            journal: None,
            replay: None,
        }
    }

    /// Selects the search engine executed by [`plan`]. Defaults to
    /// single-tree RRT\*; see [`Engine`] for the alternatives.
    ///
    /// [`plan`]: RrtStar::plan
    pub fn with_engine(mut self, engine: Engine) -> Self {
        self.engine = engine;
        self
    }

    /// The engine this planner will run.
    pub fn engine(&self) -> Engine {
        self.engine
    }

    /// Installs a cooperative stop hook polled every `every` sampling
    /// rounds (clamped to ≥ 1). When `hook` returns `true` the planner
    /// stops early and returns its best-so-far anytime result with
    /// [`PlanStats::stopped_early`] set; the exploration tree remains
    /// fully consistent (see [`RrtStar::check_tree_invariants`]).
    ///
    /// This is how a serving layer enforces per-request deadlines and
    /// cancellation without killing threads mid-iteration.
    pub fn with_stop_hook(mut self, every: usize, hook: impl Fn() -> bool + 'a) -> Self {
        self.stop_hook = Some((every.max(1), Box::new(hook)));
        self
    }

    /// Disables the refinement stage, turning the planner into plain RRT
    /// (feasible but not asymptotically optimal) — used by the related-
    /// work comparisons.
    pub fn without_rewiring(mut self) -> Self {
        self.rewire_enabled = false;
        self
    }

    /// Records a deterministic event journal during the next [`plan`]
    /// call: every sample draw (goal-bias draws included), accept,
    /// reject, rewire, and goal improvement, plus the sampler seed.
    /// Retrieve it afterwards with [`take_journal`]; feeding it to
    /// [`with_replay`] on a fresh planner over the same scenario
    /// reproduces the run bit-identically.
    ///
    /// [`plan`]: RrtStar::plan
    /// [`take_journal`]: RrtStar::take_journal
    /// [`with_replay`]: RrtStar::with_replay
    pub fn with_journal_recording(mut self) -> Self {
        self.journal_enabled = true;
        self
    }

    /// The journal recorded by the last [`RrtStar::plan`] call, if
    /// journaling was enabled.
    pub fn take_journal(&mut self) -> Option<Journal> {
        self.journal.take()
    }

    /// Replays a recorded journal: the planner consumes the journal's
    /// sample stream instead of its RNG, and its budget becomes the
    /// journal's round count. Everything downstream of sampling is
    /// deterministic, so the run — tree shape, node count, path cost —
    /// reproduces the recorded one bit for bit.
    pub fn with_replay(mut self, journal: &Journal) -> Self {
        let samples = journal
            .sample_rows()
            .map(Config::new)
            .collect::<Vec<Config>>();
        self.replay = Some(Replay { samples, cursor: 0 });
        self
    }

    /// The neighbor index (consumed state inspection after planning).
    pub fn index(&self) -> &N {
        &self.index
    }

    /// Runs the planner to its sampling budget and extracts the best
    /// path found (for the connect engines: the first path found).
    pub fn plan(&mut self) -> PlanResult {
        match self.engine {
            Engine::RrtStar => self.plan_rrt_star(),
            Engine::RrtConnect => crate::connect::plan_connect(self, false),
            Engine::MultiTree => crate::connect::plan_connect(self, true),
        }
    }

    /// The single-tree RRT\* engine.
    fn plan_rrt_star(&mut self) -> PlanResult {
        let mut rng = StdRng::seed_from_u64(self.params.seed);
        let mut stats = PlanStats::default();
        // Shared checkers may carry warm caches from a previous plan;
        // start from a neutral state so runs are op-for-op reproducible.
        self.checker.begin_plan();
        let dim = self.scenario.robot.dof();
        self.journal = self
            .journal_enabled
            .then(|| Journal::new(self.params.seed, dim));
        // A replaying planner's budget is the journal's round count: one
        // recorded sample per round, consumed in order.
        let budget = self
            .replay
            .as_ref()
            .map_or(self.params.max_samples, |r| r.samples.len());

        // Root the tree at the start configuration.
        self.nodes.clear();
        self.nodes.push(TreeNode {
            q: self.scenario.start,
            parent: None,
            children: Vec::new(),
            cost: 0.0,
        });
        self.index
            .insert(0, self.scenario.start, None, &mut stats.insert_ops);

        let mut best_goal: Option<(usize, f64)> = None; // (node, node→goal dist)

        for round in 0..budget {
            // Cooperative cancellation/deadline: polled every N rounds so
            // a serving layer can reclaim the worker; the tree stays
            // consistent and the best-so-far result is still extracted.
            if let Some((every, hook)) = &self.stop_hook {
                if round % every == 0 && round > 0 && hook() {
                    stats.stopped_early = true;
                    break;
                }
            }
            stats.samples += 1;
            let mut trace = RoundTrace::default();
            let _round_span = moped_obs::span(Stage::Round);

            // --- Sampling ---------------------------------------------
            let x_rand = {
                let _s = moped_obs::span(Stage::Sample);
                let q = match &mut self.replay {
                    Some(r) => {
                        let q = r.samples[r.cursor];
                        r.cursor += 1;
                        q
                    }
                    None if rng.gen::<f64>() < self.params.goal_bias => self.scenario.goal,
                    None => self.scenario.sample_any(&mut rng),
                };
                if let Some(j) = &mut self.journal {
                    j.record_sample(q.as_slice());
                }
                q
            };

            // --- Neighbor search 1: nearest ---------------------------
            let ns_mark = stats.ns_ops;
            let (nearest_id, _) = {
                let _s = moped_obs::span(Stage::Nearest);
                self.index
                    .nearest(&x_rand, &mut stats.ns_ops)
                    .expect("index holds at least the root")
            };
            let nearest_idx = nearest_id as usize;

            // --- Steering ---------------------------------------------
            let x_new = {
                let _s = moped_obs::span(Stage::Steer);
                self.nodes[nearest_idx].q.steer_toward(&x_rand, self.step)
            };
            stats.other_ops.mul += dim as u64;
            stats.other_ops.add += dim as u64;
            if x_new == self.nodes[nearest_idx].q {
                // Degenerate draw (sampled an existing node).
                if let Some(j) = &mut self.journal {
                    j.record_reject(RejectReason::Degenerate);
                }
                if self.params.trace_rounds {
                    trace.ns_macs = (stats.ns_ops - ns_mark).mac_equiv();
                    stats.rounds.push(trace);
                }
                continue;
            }

            // --- Collision check: extension edge ----------------------
            let cc_mark = self.ledger_macs(&stats);
            let edge_free = self.checker.motion_free(
                &self.scenario.robot,
                &self.nodes[nearest_idx].q,
                &x_new,
                &self.steps,
                &mut stats.collision,
            );
            trace.cc_macs = self.ledger_macs(&stats) - cc_mark;

            if !edge_free {
                if let Some(j) = &mut self.journal {
                    j.record_reject(RejectReason::Collision);
                }
                if self.params.trace_rounds {
                    trace.ns_macs = (stats.ns_ops - ns_mark).mac_equiv();
                    stats.rounds.push(trace);
                }
                continue;
            }

            // --- Neighbor search 2: neighborhood of x_new -------------
            let near = {
                let _s = moped_obs::span(Stage::Neighborhood);
                let radius = self.rewire_radius();
                self.index
                    .neighborhood(nearest_id, &x_new, radius, &mut stats.ns_ops)
            };
            trace.near_count = near.len() as u32;
            trace.ns_macs = (stats.ns_ops - ns_mark).mac_equiv();

            // --- Refinement: choose best parent ------------------------
            // Candidates are ranked by prospective cost and the first
            // collision-free edge wins (the ranked-order check means the
            // nearest node's already-verified edge usually terminates the
            // scan immediately, exactly the paper's low-check refinement).
            let refine_mark = self.ledger_macs(&stats) + stats.other_ops.mac_equiv();
            let refine_span = moped_obs::span(Stage::Rewire);
            let nearest_through = self.nodes[nearest_idx].cost
                + self.nodes[nearest_idx]
                    .q
                    .distance_counted(&x_new, &mut stats.other_ops);
            let mut candidates: Vec<(f64, usize)> = vec![(nearest_through, nearest_idx)];
            for (cand_id, cand_q) in &near {
                let ci = *cand_id as usize;
                if ci == nearest_idx {
                    continue;
                }
                let c = self.nodes[ci].cost + cand_q.distance_counted(&x_new, &mut stats.other_ops);
                candidates.push((c, ci));
            }
            candidates.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite costs"));
            stats.other_ops.cmp += candidates.len() as u64;
            let mut parent = nearest_idx;
            let mut best_cost = nearest_through;
            for (c, ci) in candidates {
                if ci == nearest_idx {
                    // Edge already verified collision free above.
                    parent = ci;
                    best_cost = c;
                    break;
                }
                let q = self.nodes[ci].q;
                if self.checker.motion_free(
                    &self.scenario.robot,
                    &q,
                    &x_new,
                    &self.steps,
                    &mut stats.collision,
                ) {
                    parent = ci;
                    best_cost = c;
                    break;
                }
            }
            drop(refine_span);

            // --- Insert the new node -----------------------------------
            let new_idx = self.nodes.len();
            let insert_span = moped_obs::span(Stage::Insert);
            self.nodes.push(TreeNode {
                q: x_new,
                parent: Some(parent),
                children: Vec::new(),
                cost: best_cost,
            });
            self.nodes[parent].children.push(new_idx);
            let ins_mark = stats.insert_ops;
            self.index.insert(
                new_idx as u64,
                x_new,
                Some(nearest_id),
                &mut stats.insert_ops,
            );
            if let Some(j) = &mut self.journal {
                j.record_accept(new_idx as u64, parent as u64, best_cost);
            }
            drop(insert_span);
            trace.insert_macs = (stats.insert_ops - ins_mark).mac_equiv();
            trace.accepted = true;
            stats.nodes = self.nodes.len();

            // --- Rewire ------------------------------------------------
            if self.rewire_enabled {
                let _s = moped_obs::span(Stage::Rewire);
                for (cand_id, cand_q) in &near {
                    let ci = *cand_id as usize;
                    if ci == parent || ci == new_idx {
                        continue;
                    }
                    let through = best_cost + x_new.distance_counted(cand_q, &mut stats.other_ops);
                    stats.other_ops.cmp += 1;
                    if through < self.nodes[ci].cost
                        && self.checker.motion_free(
                            &self.scenario.robot,
                            &x_new,
                            cand_q,
                            &self.steps,
                            &mut stats.collision,
                        )
                    {
                        self.reparent(ci, new_idx, through);
                        stats.rewires += 1;
                        if let Some(j) = &mut self.journal {
                            j.record_rewire(ci as u64, new_idx as u64, through);
                        }
                    }
                }
            }
            trace.refine_macs = (self.ledger_macs(&stats) + stats.other_ops.mac_equiv())
                .saturating_sub(refine_mark);

            // --- Goal bookkeeping --------------------------------------
            let gd = x_new.distance_counted(&self.scenario.goal, &mut stats.other_ops);
            stats.other_ops.cmp += 1;
            if gd <= self.params.goal_tolerance
                && self.checker.motion_free(
                    &self.scenario.robot,
                    &x_new,
                    &self.scenario.goal,
                    &self.steps,
                    &mut stats.collision,
                )
            {
                let total = self.nodes[new_idx].cost + gd;
                if best_goal.is_none_or(|(bi, bd)| total < self.nodes[bi].cost + bd) {
                    best_goal = Some((new_idx, gd));
                    stats.solution_history.push((stats.samples, total));
                    if let Some(j) = &mut self.journal {
                        j.record_goal(new_idx as u64, total);
                    }
                }
            }

            if self.params.trace_rounds {
                stats.rounds.push(trace);
            }
        }

        // Re-evaluate the best goal connection: rewiring may have lowered
        // some node's cost after it was recorded.
        let (path, path_cost) = match best_goal {
            None => (None, f64::INFINITY),
            Some((node, gd)) => {
                let mut chain = Vec::new();
                let mut cur = Some(node);
                while let Some(i) = cur {
                    chain.push(self.nodes[i].q);
                    cur = self.nodes[i].parent;
                }
                chain.reverse();
                chain.push(self.scenario.goal);
                (Some(chain), self.nodes[node].cost + gd)
            }
        };

        stats.nodes = self.nodes.len();
        PlanResult {
            path,
            path_cost,
            stats,
        }
    }

    /// Total collision-ledger MACs (both stages).
    pub(crate) fn ledger_macs(&self, stats: &PlanStats) -> u64 {
        stats.collision.total_ops().mac_equiv()
    }

    /// RRT\* shrinking rewire radius, clamped around the steering step.
    fn rewire_radius(&self) -> f64 {
        let n = self.nodes.len().max(2) as f64;
        let d = self.scenario.robot.dof() as f64;
        let r = self.params.rewire_gamma * ((n.ln()) / n).powf(1.0 / d);
        r.clamp(self.step, 4.0 * self.step)
    }

    /// Moves `node` under `new_parent` with the given new cost and
    /// propagates the cost delta through the subtree.
    fn reparent(&mut self, node: usize, new_parent: usize, new_cost: f64) {
        let old_parent = self.nodes[node].parent.expect("root is never rewired");
        self.nodes[old_parent].children.retain(|&c| c != node);
        self.nodes[node].parent = Some(new_parent);
        self.nodes[new_parent].children.push(node);
        let delta = new_cost - self.nodes[node].cost;
        let mut stack = vec![node];
        while let Some(i) = stack.pop() {
            self.nodes[i].cost += delta;
            stack.extend_from_slice(&self.nodes[i].children);
        }
    }

    /// Exposes the exploration tree as `(config, parent, cost)` rows for
    /// inspection and invariant tests.
    pub fn tree_snapshot(&self) -> Vec<(Config, Option<usize>, f64)> {
        self.nodes.iter().map(|n| (n.q, n.parent, n.cost)).collect()
    }

    /// Verifies exploration-tree invariants: acyclic parent chains,
    /// consistent child links, and costs equal to the sum of edge lengths
    /// along the parent chain. The RRT\* engine additionally requires a
    /// single root (node 0); the connect engines grow a forest, so any
    /// parentless node is a valid root provided its cost is zero.
    ///
    /// Returns a violation description or `None` when sound.
    pub fn check_tree_invariants(&self) -> Option<String> {
        if self.nodes.is_empty() {
            return None;
        }
        if self.nodes[0].parent.is_some() {
            return Some("root has a parent".into());
        }
        for (i, n) in self.nodes.iter().enumerate() {
            if let Some(p) = n.parent {
                if !self.nodes[p].children.contains(&i) {
                    return Some(format!("child link missing for {i}"));
                }
                let expect = self.nodes[p].cost + self.nodes[p].q.distance(&n.q);
                if (expect - n.cost).abs() > 1e-6 {
                    return Some(format!(
                        "cost mismatch at {i}: stored {} vs recomputed {expect}",
                        n.cost
                    ));
                }
            } else if i != 0 {
                if self.engine == Engine::RrtStar {
                    return Some(format!("non-root {i} has no parent"));
                }
                if n.cost != 0.0 {
                    return Some(format!("forest root {i} has nonzero cost {}", n.cost));
                }
            }
            // Walk to root, guarding against cycles.
            let mut seen = 0usize;
            let mut cur = n.parent;
            while let Some(p) = cur {
                seen += 1;
                if seen > self.nodes.len() {
                    return Some(format!("cycle reachable from {i}"));
                }
                cur = self.nodes[p].parent;
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{LinearIndex, SimbrIndex};
    use moped_collision::{NaiveChecker, TwoStageChecker};
    use moped_env::ScenarioParams;
    use moped_robot::Robot;

    fn quick_params(samples: usize, seed: u64) -> PlannerParams {
        PlannerParams {
            max_samples: samples,
            seed,
            ..PlannerParams::default()
        }
    }

    #[test]
    fn finds_path_in_open_2d_world() {
        let s = moped_env::Scenario::generate(
            Robot::mobile_2d(),
            &ScenarioParams::with_obstacles(8),
            3,
        );
        let checker = TwoStageChecker::moped(s.obstacles.clone());
        let mut planner = RrtStar::new(&s, &checker, SimbrIndex::moped(3), quick_params(800, 5));
        let result = planner.plan();
        assert!(result.solved(), "open world should be solvable");
        assert!(result.path_cost.is_finite());
        assert!(planner.check_tree_invariants().is_none());
    }

    #[test]
    fn path_endpoints_are_start_and_goal() {
        let s = moped_env::Scenario::generate(
            Robot::mobile_2d(),
            &ScenarioParams::with_obstacles(8),
            7,
        );
        let checker = TwoStageChecker::moped(s.obstacles.clone());
        let mut planner = RrtStar::new(&s, &checker, SimbrIndex::moped(3), quick_params(800, 2));
        let result = planner.plan();
        if let Some(path) = &result.path {
            assert_eq!(path[0], s.start);
            assert_eq!(*path.last().unwrap(), s.goal);
            // Path cost equals the sum of its edge lengths. (Individual
            // edges may exceed the steering step after rewiring.)
            let summed: f64 = path.windows(2).map(|w| w[0].distance(&w[1])).sum();
            assert!((summed - result.path_cost).abs() < 1e-6);
        }
    }

    #[test]
    fn path_is_collision_free() {
        let s = moped_env::Scenario::generate(
            Robot::mobile_2d(),
            &ScenarioParams::with_obstacles(16),
            11,
        );
        let checker = TwoStageChecker::moped(s.obstacles.clone());
        let mut planner = RrtStar::new(&s, &checker, SimbrIndex::moped(3), quick_params(1200, 9));
        let result = planner.plan();
        if let Some(path) = &result.path {
            for w in path.windows(2) {
                let poses = moped_geometry::interpolate(&w[0], &w[1], &planner.steps);
                for p in poses {
                    assert!(!s.config_collides(&p), "path pose collides: {p:?}");
                }
            }
        }
    }

    #[test]
    fn baseline_and_moped_both_solve_same_scene() {
        let s = moped_env::Scenario::generate(
            Robot::mobile_2d(),
            &ScenarioParams::with_obstacles(8),
            5,
        );
        let naive = NaiveChecker::new(s.obstacles.clone());
        let two = TwoStageChecker::moped(s.obstacles.clone());
        let r0 = RrtStar::new(&s, &naive, LinearIndex::new(), quick_params(600, 1)).plan();
        let r4 = RrtStar::new(&s, &two, SimbrIndex::moped(3), quick_params(600, 1)).plan();
        assert_eq!(r0.solved(), r4.solved(), "same seed, same feasibility");
        if r0.solved() {
            // Path quality parity within a generous factor.
            assert!(r4.path_cost < 2.0 * r0.path_cost + 50.0);
        }
    }

    #[test]
    fn moped_costs_less_than_baseline() {
        let s = moped_env::Scenario::generate(
            Robot::drone_3d(),
            &ScenarioParams::with_obstacles(32),
            13,
        );
        let naive = NaiveChecker::new(s.obstacles.clone());
        let two = TwoStageChecker::moped(s.obstacles.clone());
        let r0 = RrtStar::new(&s, &naive, LinearIndex::new(), quick_params(400, 4)).plan();
        let r4 = RrtStar::new(&s, &two, SimbrIndex::moped(6), quick_params(400, 4)).plan();
        let base = r0.stats.total_ops().mac_equiv();
        let moped = r4.stats.total_ops().mac_equiv();
        // At this small 400-sample budget the saving is ~2.5-3x; the gap
        // widens with sample count (baseline NS is O(n) per round) — the
        // figures harness demonstrates the paper-scale factors at 5000.
        assert!(
            moped * 2 < base,
            "full MOPED should save >2x on a 32-obstacle drone scene: {moped} vs {base}"
        );
    }

    #[test]
    fn tracing_records_each_round() {
        let s = moped_env::Scenario::generate(
            Robot::mobile_2d(),
            &ScenarioParams::with_obstacles(8),
            2,
        );
        let checker = TwoStageChecker::moped(s.obstacles.clone());
        let params = PlannerParams {
            trace_rounds: true,
            ..quick_params(200, 3)
        };
        let mut planner = RrtStar::new(&s, &checker, SimbrIndex::moped(3), params);
        let result = planner.plan();
        assert_eq!(result.stats.rounds.len(), result.stats.samples);
        assert!(result.stats.rounds.iter().any(|r| r.accepted));
        assert!(result.stats.rounds.iter().any(|r| r.ns_macs > 0));
    }

    #[test]
    fn rrt_mode_skips_rewiring() {
        let s = moped_env::Scenario::generate(
            Robot::mobile_2d(),
            &ScenarioParams::with_obstacles(8),
            4,
        );
        let checker = TwoStageChecker::moped(s.obstacles.clone());
        let mut planner = RrtStar::new(&s, &checker, SimbrIndex::moped(3), quick_params(500, 6))
            .without_rewiring();
        let result = planner.plan();
        assert_eq!(result.stats.rewires, 0);
        assert!(planner.check_tree_invariants().is_none());
    }

    #[test]
    fn deterministic_given_seed() {
        let s = moped_env::Scenario::generate(
            Robot::mobile_2d(),
            &ScenarioParams::with_obstacles(16),
            8,
        );
        let checker = TwoStageChecker::moped(s.obstacles.clone());
        let a = RrtStar::new(&s, &checker, SimbrIndex::moped(3), quick_params(300, 17)).plan();
        let b = RrtStar::new(&s, &checker, SimbrIndex::moped(3), quick_params(300, 17)).plan();
        assert_eq!(a.path_cost.to_bits(), b.path_cost.to_bits());
        assert_eq!(a.stats.total_ops(), b.stats.total_ops());
    }

    #[test]
    fn journal_replay_reproduces_run_bit_identically() {
        let s = moped_env::Scenario::generate(
            Robot::mobile_2d(),
            &ScenarioParams::with_obstacles(16),
            9,
        );
        let checker = TwoStageChecker::moped(s.obstacles.clone());
        let mut recorder = RrtStar::new(&s, &checker, SimbrIndex::moped(3), quick_params(400, 23))
            .with_journal_recording();
        let original = recorder.plan();
        let journal = recorder.take_journal().expect("journaling was enabled");
        assert_eq!(journal.rounds(), original.stats.samples);
        assert_eq!(journal.seed(), 23);

        // Replay through the serialized wire format, not the in-memory
        // journal, so the f64 hex round trip is part of what's verified.
        let journal = Journal::parse(&journal.serialize()).expect("wire round trip");
        let mut replayer = RrtStar::new(&s, &checker, SimbrIndex::moped(3), quick_params(400, 23))
            .with_replay(&journal);
        let replayed = replayer.plan();
        assert_eq!(original.path_cost.to_bits(), replayed.path_cost.to_bits());
        assert_eq!(original.stats.nodes, replayed.stats.nodes);
        assert_eq!(original.stats.samples, replayed.stats.samples);
        assert_eq!(original.stats.rewires, replayed.stats.rewires);
        assert_eq!(original.stats.total_ops(), replayed.stats.total_ops());
        assert!(replayer.check_tree_invariants().is_none());
    }

    #[test]
    fn journal_records_every_round_outcome() {
        let s = moped_env::Scenario::generate(
            Robot::mobile_2d(),
            &ScenarioParams::with_obstacles(8),
            2,
        );
        let checker = TwoStageChecker::moped(s.obstacles.clone());
        let mut planner = RrtStar::new(&s, &checker, SimbrIndex::moped(3), quick_params(300, 7))
            .with_journal_recording();
        let result = planner.plan();
        let journal = planner.take_journal().expect("journaling was enabled");
        // Accepted rounds match tree growth (root is not journaled).
        assert_eq!(journal.accepts(), result.stats.nodes - 1);
        // Every round drew exactly one sample.
        assert_eq!(journal.rounds(), result.stats.samples);
    }

    #[test]
    fn rewiring_improves_or_preserves_cost() {
        let s = moped_env::Scenario::generate(
            Robot::mobile_2d(),
            &ScenarioParams::with_obstacles(8),
            6,
        );
        let checker = TwoStageChecker::moped(s.obstacles.clone());
        let star = RrtStar::new(&s, &checker, SimbrIndex::moped(3), quick_params(900, 21)).plan();
        let plain = RrtStar::new(&s, &checker, SimbrIndex::moped(3), quick_params(900, 21))
            .without_rewiring()
            .plan();
        if star.solved() && plain.solved() {
            assert!(
                star.path_cost <= plain.path_cost * 1.05 + 1.0,
                "RRT* should not be much worse than RRT: {} vs {}",
                star.path_cost,
                plain.path_cost
            );
        }
    }

    #[test]
    fn stats_breakdown_sums_to_one() {
        let s = moped_env::Scenario::generate(
            Robot::drone_3d(),
            &ScenarioParams::with_obstacles(16),
            3,
        );
        let naive = NaiveChecker::new(s.obstacles.clone());
        let r = RrtStar::new(&s, &naive, LinearIndex::new(), quick_params(150, 2)).plan();
        let (cc, ns, other) = r.stats.breakdown();
        assert!((cc + ns + other - 1.0).abs() < 1e-9);
        assert!(cc > 0.0 && ns > 0.0);
    }

    #[test]
    fn solution_history_is_monotonically_improving() {
        let s = moped_env::Scenario::generate(
            Robot::mobile_2d(),
            &ScenarioParams::with_obstacles(8),
            14,
        );
        let checker = TwoStageChecker::moped(s.obstacles.clone());
        let result = RrtStar::new(&s, &checker, SimbrIndex::moped(3), quick_params(1500, 8)).plan();
        let h = &result.stats.solution_history;
        if result.solved() {
            assert!(!h.is_empty(), "a solved run must record its first solution");
            for w in h.windows(2) {
                assert!(w[0].0 <= w[1].0, "sample indices must be ordered");
                assert!(w[1].1 < w[0].1, "recorded costs must strictly improve");
            }
            // The final recorded cost can only improve further via
            // rewiring after the record, never regress.
            assert!(result.path_cost <= h.last().unwrap().1 + 1e-9);
        }
    }

    #[test]
    fn stop_hook_truncates_run_to_identical_prefix() {
        // Stopping at round K must be indistinguishable from a run whose
        // budget was K all along: same tree, same best-so-far answer.
        let s = moped_env::Scenario::generate(
            Robot::mobile_2d(),
            &ScenarioParams::with_obstacles(8),
            3,
        );
        let checker = TwoStageChecker::moped(s.obstacles.clone());
        let polls = std::cell::Cell::new(0u32);
        let mut hooked = RrtStar::new(&s, &checker, SimbrIndex::moped(3), quick_params(800, 5))
            .with_stop_hook(50, || {
                polls.set(polls.get() + 1);
                polls.get() >= 3 // fires at round 150
            });
        let early = hooked.plan();
        assert!(early.stats.stopped_early);
        assert_eq!(early.stats.samples, 150);
        assert!(hooked.check_tree_invariants().is_none());

        let full = RrtStar::new(&s, &checker, SimbrIndex::moped(3), quick_params(150, 5)).plan();
        assert!(!full.stats.stopped_early);
        assert_eq!(early.path_cost.to_bits(), full.path_cost.to_bits());
        assert_eq!(early.stats.total_ops(), full.stats.total_ops());
    }

    #[test]
    fn deadline_expiry_returns_valid_best_so_far() {
        // A wall-clock deadline far shorter than the sampling budget must
        // cut the run short while leaving a sound tree and a usable
        // anytime result — the serving layer's liveness guarantee.
        use std::time::{Duration, Instant};
        let s = moped_env::Scenario::generate(
            Robot::drone_3d(),
            &ScenarioParams::with_obstacles(32),
            13,
        );
        let checker = TwoStageChecker::moped(s.obstacles.clone());
        let deadline = Instant::now() + Duration::from_millis(20);
        let params = quick_params(50_000_000, 4); // would run for hours
        let mut planner = RrtStar::new(&s, &checker, SimbrIndex::moped(6), params)
            .with_stop_hook(64, move || Instant::now() >= deadline);
        let result = planner.plan();
        assert!(result.stats.stopped_early, "deadline must fire");
        assert!(result.stats.samples < 50_000_000);
        assert!(planner.check_tree_invariants().is_none());
        assert_eq!(result.stats.nodes, planner.tree_snapshot().len());
        if let Some(path) = &result.path {
            assert_eq!(path[0], s.start);
            assert_eq!(*path.last().unwrap(), s.goal);
        }
    }

    #[test]
    fn seven_dof_arm_planning_runs() {
        let s =
            moped_env::Scenario::generate(Robot::xarm7(), &ScenarioParams::with_obstacles(8), 10);
        let checker = TwoStageChecker::moped(s.obstacles.clone());
        let params = PlannerParams {
            goal_tolerance: 0.8,
            ..quick_params(400, 12)
        };
        let mut planner = RrtStar::new(&s, &checker, SimbrIndex::moped(7), params);
        let result = planner.plan();
        assert!(result.stats.nodes > 1, "tree should grow in 7-DoF space");
        assert!(planner.check_tree_invariants().is_none());
    }
}
