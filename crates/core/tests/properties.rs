//! Property-based tests for the RRT\* planner: soundness of the returned
//! path and the exploration tree under arbitrary seeds, budgets, and
//! variant choices.

use moped_collision::TwoStageChecker;
use moped_core::{plan_variant, PlannerParams, RrtStar, SimbrIndex, Variant};
use moped_env::{Scenario, ScenarioParams};
use moped_geometry::interpolate;
use moped_geometry::InterpolationSteps;
use moped_robot::Robot;
use proptest::prelude::*;

fn variant_from(idx: u8) -> Variant {
    Variant::ALL[(idx as usize) % Variant::ALL.len()]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Any (seed, budget, variant) triple yields a sound result on a 2D
    /// scene: exact sample count, endpoints correct, path collision free
    /// under the exact oracle, and cost = sum of edge lengths.
    #[test]
    fn planner_soundness(
        scene_seed in 0u64..200,
        plan_seed in 0u64..50,
        budget in 100usize..400,
        vidx in 0u8..5,
    ) {
        let s = Scenario::generate(
            Robot::mobile_2d(),
            &ScenarioParams::with_obstacles(16),
            scene_seed,
        );
        let variant = variant_from(vidx);
        let params = PlannerParams {
            max_samples: budget,
            seed: plan_seed,
            ..PlannerParams::default()
        };
        let r = plan_variant(&s, variant, &params);
        prop_assert_eq!(r.stats.samples, budget);
        if let Some(path) = &r.path {
            prop_assert_eq!(&path[0], &s.start);
            prop_assert_eq!(path.last().unwrap(), &s.goal);
            let summed: f64 = path.windows(2).map(|w| w[0].distance(&w[1])).sum();
            prop_assert!((summed - r.path_cost).abs() < 1e-6);
            // Validate at the planner's own discretization (step/4):
            // collision freedom is only guaranteed at the resolution the
            // planner checked, a deliberate property of sampling-based
            // planning.
            let steps = InterpolationSteps::with_resolution(
                (s.robot.steering_step() / 4.0).max(1e-3),
            );
            for w in path.windows(2) {
                for pose in interpolate(&w[0], &w[1], &steps) {
                    prop_assert!(!s.config_collides(&pose), "{variant}: colliding pose");
                }
            }
        }
    }

    /// Tree invariants hold after any run (costs consistent, no cycles,
    /// child links intact) — including with rewiring disabled.
    #[test]
    fn tree_invariants(scene_seed in 0u64..100, plan_seed in 0u64..30, rewire in any::<bool>()) {
        let s = Scenario::generate(
            Robot::drone_3d(),
            &ScenarioParams::with_obstacles(16),
            scene_seed,
        );
        let checker = TwoStageChecker::moped(s.obstacles.clone());
        let params = PlannerParams { max_samples: 200, seed: plan_seed, ..PlannerParams::default() };
        let mut planner = RrtStar::new(&s, &checker, SimbrIndex::moped(6), params);
        if !rewire {
            planner = planner.without_rewiring();
        }
        let _ = planner.plan();
        prop_assert!(planner.check_tree_invariants().is_none(),
            "{:?}", planner.check_tree_invariants());
    }

    /// Determinism: identical inputs give bit-identical outputs for every
    /// variant.
    #[test]
    fn determinism(scene_seed in 0u64..50, vidx in 0u8..5) {
        let s = Scenario::generate(
            Robot::mobile_2d(),
            &ScenarioParams::with_obstacles(8),
            scene_seed,
        );
        let variant = variant_from(vidx);
        let params = PlannerParams { max_samples: 150, seed: 9, ..PlannerParams::default() };
        let a = plan_variant(&s, variant, &params);
        let b = plan_variant(&s, variant, &params);
        prop_assert_eq!(a.path_cost.to_bits(), b.path_cost.to_bits());
        prop_assert_eq!(a.stats.total_ops(), b.stats.total_ops());
        prop_assert_eq!(a.stats.nodes, b.stats.nodes);
    }

    /// Round traces account for the run: per-phase MACs sum close to the
    /// aggregate ledgers (within the bookkeeping not attributed to
    /// rounds, e.g. goal-connection checks).
    #[test]
    fn trace_accounts_for_ledgers(scene_seed in 0u64..50) {
        let s = Scenario::generate(
            Robot::mobile_2d(),
            &ScenarioParams::with_obstacles(16),
            scene_seed,
        );
        let params = PlannerParams {
            max_samples: 200,
            seed: 3,
            trace_rounds: true,
            ..PlannerParams::default()
        };
        let r = plan_variant(&s, Variant::V4Lci, &params);
        prop_assert_eq!(r.stats.rounds.len(), r.stats.samples);
        let traced_ns: u64 = r.stats.rounds.iter().map(|t| t.ns_macs).sum();
        let total_ns = r.stats.ns_ops.mac_equiv();
        prop_assert!(traced_ns <= total_ns);
        prop_assert!(traced_ns * 10 >= total_ns * 9, "trace misses >10% of NS work");
    }
}
