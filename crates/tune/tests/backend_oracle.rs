//! NN-backend equivalence oracle: the three index backends the tuner
//! switches between must agree on nearest neighbors and (in exact mode)
//! on neighborhood sets, on seeded point clouds across every robot's
//! configuration dimension. This is the guard under the tuner's backend
//! switching: a profile change may trade *time*, never *answers*.

use moped_core::{AnyIndex, NeighborIndex, NnBackend};
use moped_geometry::{Config, OpCount};
use moped_robot::{Robot, RobotModel};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Every robot model's DoF, deduplicated by hand in the loops below.
const MODELS: [RobotModel; 5] = [
    RobotModel::Mobile2d,
    RobotModel::Drone3d,
    RobotModel::ViperX300,
    RobotModel::Rozum,
    RobotModel::XArm7,
];

fn seeded_cloud(n: usize, dim: usize, seed: u64) -> Vec<Config> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let coords: Vec<f64> = (0..dim).map(|_| rng.gen_range(-40.0..40.0)).collect();
            Config::new(&coords)
        })
        .collect()
}

/// Inserts points the way the planner does: each point's `near_hint` is
/// the current nearest (the steering anchor), so LCI placement runs.
fn fill(index: &mut AnyIndex, pts: &[Config]) {
    let mut ops = OpCount::default();
    for (i, p) in pts.iter().enumerate() {
        let hint = index.nearest(p, &mut ops).map(|(id, _)| id);
        index.insert(i as u64, *p, hint, &mut ops);
    }
}

fn sorted_ids(set: &[(u64, Config)]) -> Vec<u64> {
    let mut ids: Vec<u64> = set.iter().map(|(id, _)| *id).collect();
    ids.sort_unstable();
    ids
}

#[test]
fn backends_agree_on_nearest_across_all_robot_dims() {
    for model in MODELS {
        let dim = Robot::from_model(model).dof();
        let pts = seeded_cloud(240, dim, 0xD1CE_0000 + dim as u64);
        let queries = seeded_cloud(40, dim, 0xBEEF_0000 + dim as u64);
        let mut linear = NnBackend::Linear.build(dim, false, false);
        let mut kd = NnBackend::Kd.build(dim, false, false);
        // Exact SI-MBR (SIAS off) and the full MOPED config: `nearest`
        // is exact in both (SIAS only changes `neighborhood`).
        let mut simbr_exact = NnBackend::SiMbr.build(dim, false, false);
        let mut simbr_moped = NnBackend::SiMbr.build(dim, true, true);
        for idx in [&mut linear, &mut kd, &mut simbr_exact, &mut simbr_moped] {
            fill(idx, &pts);
        }
        let mut ops = OpCount::default();
        for q in &queries {
            let (want_id, want_d) = linear.nearest(q, &mut ops).expect("cloud is non-empty");
            for idx in [&kd, &simbr_exact, &simbr_moped] {
                let (id, d) = idx.nearest(q, &mut ops).expect("cloud is non-empty");
                assert!(
                    (d - want_d).abs() < 1e-9,
                    "dim {dim}: {} nearest distance {d} != linear {want_d}",
                    idx.name()
                );
                // Equidistant pairs may legitimately resolve differently;
                // identical distance with a different id is acceptable
                // only if the two points are truly equidistant.
                if id != want_id {
                    let a = pts[id as usize].distance(q);
                    let b = pts[want_id as usize].distance(q);
                    assert!(
                        (a - b).abs() < 1e-9,
                        "dim {dim}: {} tie mismatch",
                        idx.name()
                    );
                }
            }
        }
    }
}

#[test]
fn exact_backends_agree_on_neighborhood_sets_across_all_robot_dims() {
    for model in MODELS {
        let dim = Robot::from_model(model).dof();
        let pts = seeded_cloud(200, dim, 0xFACE_0000 + dim as u64);
        let mut linear = NnBackend::Linear.build(dim, false, false);
        let mut kd = NnBackend::Kd.build(dim, false, false);
        let mut simbr_exact = NnBackend::SiMbr.build(dim, false, false);
        for idx in [&mut linear, &mut kd, &mut simbr_exact] {
            fill(idx, &pts);
        }
        let mut ops = OpCount::default();
        let queries = seeded_cloud(12, dim, 0xF00D_0000 + dim as u64);
        for (qi, q) in queries.iter().enumerate() {
            // Radius chosen per-dim so the sets are non-trivially sized.
            for radius in [6.0, 14.0 + dim as f64 * 4.0] {
                let want = sorted_ids(&linear.neighborhood(0, q, radius, &mut ops));
                for idx in [&kd, &simbr_exact] {
                    let got = sorted_ids(&idx.neighborhood(0, q, radius, &mut ops));
                    assert_eq!(
                        got,
                        want,
                        "dim {dim} query {qi} r {radius}: {} neighborhood diverges",
                        idx.name()
                    );
                }
            }
        }
    }
}

#[test]
fn sias_neighborhood_contains_its_anchor_across_all_robot_dims() {
    // The SIAS backend is *approximate* by contract: it returns the
    // anchor's leaf group. The invariant the planner relies on is that
    // the anchor itself is always present (the tree stays connected).
    for model in MODELS {
        let dim = Robot::from_model(model).dof();
        let pts = seeded_cloud(180, dim, 0xA11C_0000 + dim as u64);
        let mut sias = NnBackend::SiMbr.build(dim, true, true);
        fill(&mut sias, &pts);
        let mut ops = OpCount::default();
        for anchor in [0u64, 7, 91, 179] {
            let group = sias.neighborhood(anchor, &pts[anchor as usize], 8.0, &mut ops);
            assert!(
                group.iter().any(|(id, _)| *id == anchor),
                "dim {dim}: SIAS group lost its anchor {anchor}"
            );
        }
    }
}

#[test]
fn moped_index_insertion_order_does_not_change_nearest_answers() {
    // LCI places points next to their steering anchor, so tree *shape*
    // depends on insertion order — answers must not.
    let dim = 6;
    let pts = seeded_cloud(160, dim, 0x06DE_6000);
    let mut fwd = NnBackend::SiMbr.build(dim, true, true);
    fill(&mut fwd, &pts);
    let mut rev = NnBackend::SiMbr.build(dim, true, true);
    let mut ops = OpCount::default();
    for (i, p) in pts.iter().enumerate().rev() {
        let hint = rev.nearest(p, &mut ops).map(|(id, _)| id);
        rev.insert(i as u64, *p, hint, &mut ops);
    }
    for q in seeded_cloud(25, dim, 0x5EED_0001) {
        let a = fwd.nearest(&q, &mut ops).expect("non-empty").1;
        let b = rev.nearest(&q, &mut ops).expect("non-empty").1;
        assert!((a - b).abs() < 1e-9, "insertion order changed nearest");
    }
}
