//! The tuner's determinism contract, end to end: with a pinned
//! [`ProfileTable`], an auto-tuned plan is bit-identical across runs and
//! journal-replayable — switching profiles never leaves the replay
//! envelope the core planner guarantees.

use moped_collision::TwoStageChecker;
use moped_core::{PlannerParams, RrtStar};
use moped_obs::Journal;
use moped_robot::RobotModel;
use moped_scenarios::{CorpusEntry, Family};
use moped_tune::{plan_with_profile, CalibrationConfig, Calibrator, ProfileTable, RequestClass};

fn pinned_table() -> ProfileTable {
    let mut cal = Calibrator::new(CalibrationConfig {
        probe_samples: 200,
        ..CalibrationConfig::default()
    });
    for family in [Family::Shelf, Family::Maze, Family::Clutter] {
        for seed in [1, 2] {
            cal.add_scenario(&CorpusEntry::new(family, RobotModel::Mobile2d, seed).build());
        }
    }
    cal.calibrate().0
}

#[test]
fn pinned_table_round_trips_and_resolves_identically() {
    let table = pinned_table();
    let wire = table.serialize();
    let reparsed = ProfileTable::parse(&wire).expect("wire round trip");
    assert_eq!(reparsed.serialize(), wire);
    for entry in [
        CorpusEntry::new(Family::Shelf, RobotModel::Mobile2d, 1),
        CorpusEntry::new(Family::Clutter, RobotModel::Mobile2d, 2),
    ] {
        let class = RequestClass::of_scenario(&entry.build()).id();
        assert_eq!(table.resolve(&class), reparsed.resolve(&class));
    }
}

#[test]
fn auto_tuned_plan_is_bit_identical_across_runs() {
    let table = pinned_table();
    let scene = CorpusEntry::new(Family::Maze, RobotModel::Mobile2d, 1).build();
    let res = table.resolve(&RequestClass::of_scenario(&scene).id());
    let params = PlannerParams {
        max_samples: 400,
        seed: 23,
        ..PlannerParams::default()
    };
    let a = plan_with_profile(&scene, &res.profile, &params);
    let b = plan_with_profile(&scene, &res.profile, &params);
    assert_eq!(a.solved(), b.solved());
    assert_eq!(a.path_cost.to_bits(), b.path_cost.to_bits());
    assert_eq!(a.stats.samples, b.stats.samples);
    assert_eq!(a.stats.total_ops(), b.stats.total_ops());
}

#[test]
fn auto_tuned_plan_replays_bit_identically_from_its_journal() {
    let table = pinned_table();
    let scene = CorpusEntry::new(Family::Shelf, RobotModel::Mobile2d, 1).build();
    let res = table.resolve(&RequestClass::of_scenario(&scene).id());
    assert!(res.from_table, "calibration must cover the shelf class");
    let params = PlannerParams {
        max_samples: 500,
        seed: 31,
        ..PlannerParams::default()
    };

    let checker = TwoStageChecker::moped(scene.obstacles.clone());
    let stack = |journal: Option<&Journal>| {
        let index = res.profile.build_index(scene.robot.dof());
        let planner = RrtStar::new(&scene, &checker, index, res.profile.apply(&params))
            .with_engine(res.profile.engine);
        match journal {
            Some(j) => planner.with_replay(j),
            None => planner.with_journal_recording(),
        }
    };

    let mut recorder = stack(None);
    let original = recorder.plan();
    let journal = recorder.take_journal().expect("journaling was enabled");
    // Replay through the serialized wire format so the f64 hex round
    // trip is included in what the contract covers.
    let journal = Journal::parse(&journal.serialize()).expect("journal wire round trip");
    let replayed = stack(Some(&journal)).plan();

    assert_eq!(original.path_cost.to_bits(), replayed.path_cost.to_bits());
    assert_eq!(original.stats.samples, replayed.stats.samples);
    assert_eq!(original.stats.nodes, replayed.stats.nodes);
    assert_eq!(original.stats.total_ops(), replayed.stats.total_ops());
}
