//! moped-tune: the adaptive planner-profile subsystem.
//!
//! Closes the observation→configuration loop the paper's Fig 3 data
//! motivates: the collision-vs-NN bottleneck flips with workload, and
//! engine/backend choice is the biggest lever the serving layer can pull
//! per request. This crate owns that choice:
//!
//! * [`PlannerProfile`] — one serializable planner configuration
//!   (engine, NN backend, SIAS, radius policy, sample budget);
//! * [`RequestClass`] — the bucketed robot × environment key profiles
//!   are resolved under;
//! * [`Calibrator`] — short seeded micro-plans scoring candidate
//!   profiles per class (offline/startup path);
//! * [`Adapter`] — epoch-boundary profile switching with hysteresis,
//!   driven by quantized `moped-obs` bottleneck snapshots (online path);
//! * [`ProfileTable`] — the class→profile map the service resolves on
//!   admission, with a pinnable wire form.
//!
//! **Determinism contract.** Every decision here is a pure function of
//! (class, probe results, quantized profile snapshot). The crate is on
//! the lint `DETERMINISTIC_CRATES` list: no wall clock, no hash-order
//! iteration. Fix the calibration seed and pin the table, and every
//! auto-tuned plan is bit-identical and journal-replayable.
//!
//! # Example
//!
//! ```
//! use moped_core::PlannerParams;
//! use moped_robot::RobotModel;
//! use moped_scenarios::{CorpusEntry, Family};
//! use moped_tune::{plan_with_profile, CalibrationConfig, Calibrator, RequestClass};
//!
//! let scene = CorpusEntry::new(Family::Shelf, RobotModel::Mobile2d, 1).build();
//! let mut cal = Calibrator::new(CalibrationConfig { probe_samples: 150, ..Default::default() });
//! cal.add_scenario(&scene);
//! let (table, _probes) = cal.calibrate();
//! let res = table.resolve(&RequestClass::of_scenario(&scene).id());
//! let result = plan_with_profile(&scene, &res.profile, &PlannerParams::default());
//! assert!(result.stats.samples > 0);
//! ```

#![deny(missing_docs)]

mod adapter;
mod calibrate;
mod class;
mod profile;
mod table;

pub use adapter::{regime, Adapter, AdapterConfig, ProfileSwitch, Regime};
pub use calibrate::{
    connect_capped, default_candidates, CalibrationConfig, Calibrator, ProbeOutcome,
};
pub use class::{DensityBucket, ObstacleBucket, RequestClass};
pub use profile::{BudgetPolicy, PlannerProfile, RadiusPolicy};
pub use table::{ProfileTable, Resolution};

use moped_collision::TwoStageChecker;
use moped_core::{PlanResult, PlannerParams, RrtStar};
use moped_env::Scenario;

/// Plans `scenario` under `profile`: the full two-stage collision stack,
/// the profile's neighbor index and engine, and the profile's parameter
/// policies applied over `base`.
///
/// Deterministic in (scenario, profile, base) — this is the single entry
/// point the calibration probe, the bench auto column, and tests share,
/// so what the tuner scored is exactly what production runs.
pub fn plan_with_profile(
    scenario: &Scenario,
    profile: &PlannerProfile,
    base: &PlannerParams,
) -> PlanResult {
    let checker = TwoStageChecker::moped(scenario.obstacles.clone());
    let index = profile.build_index(scenario.robot.dof());
    let result = RrtStar::new(scenario, &checker, index, profile.apply(base))
        .with_engine(profile.engine)
        .plan();
    result
}
