//! The [`RequestClass`]: the bucketed (robot × environment) key profiles
//! are resolved under.
//!
//! The raw signature ([`SceneSig`]) lives in `moped-scenarios` so scene
//! generators stay tuner-agnostic; this module owns the bucketing, which
//! is deliberately coarse — classes exist to share calibration results
//! across similar requests, not to memorize individual scenes.

use moped_env::Scenario;
use moped_scenarios::{robot_slug, scene_sig, SceneSig};

/// Obstacle-count bucket.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum ObstacleBucket {
    /// Fewer than 12 obstacles (walls, doors, sparse blocks).
    Few,
    /// 12–47 obstacles (structured interiors, mazes).
    Mid,
    /// 48 or more obstacles (clutter fields).
    Many,
}

impl ObstacleBucket {
    /// Buckets a raw obstacle count.
    pub fn of(count: usize) -> ObstacleBucket {
        if count < 12 {
            ObstacleBucket::Few
        } else if count < 48 {
            ObstacleBucket::Mid
        } else {
            ObstacleBucket::Many
        }
    }

    /// Stable id fragment.
    pub fn name(self) -> &'static str {
        match self {
            ObstacleBucket::Few => "o-few",
            ObstacleBucket::Mid => "o-mid",
            ObstacleBucket::Many => "o-many",
        }
    }
}

/// Occupied-volume bucket (integer permille of the workspace cube).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum DensityBucket {
    /// Under 3‰ occupied — thin walls, sparse fields.
    Thin,
    /// 3–19‰ occupied.
    Mid,
    /// 20‰ or more occupied.
    Dense,
}

impl DensityBucket {
    /// Buckets a raw permille value.
    pub fn of(permille: u32) -> DensityBucket {
        if permille < 3 {
            DensityBucket::Thin
        } else if permille < 20 {
            DensityBucket::Mid
        } else {
            DensityBucket::Dense
        }
    }

    /// Stable id fragment.
    pub fn name(self) -> &'static str {
        match self {
            DensityBucket::Thin => "v-thin",
            DensityBucket::Mid => "v-mid",
            DensityBucket::Dense => "v-dense",
        }
    }
}

/// The request class a profile is resolved under: robot kind × bucketed
/// environment signature. A pure function of the scene — never of wall
/// clock, request order, or load.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct RequestClass {
    /// Robot slug (`mobile_2d`, `drone_3d`, `xarm7`, …).
    pub robot: &'static str,
    /// Configuration-space dimension.
    pub dof: usize,
    /// Obstacle-count bucket.
    pub obstacles: ObstacleBucket,
    /// Occupied-volume bucket.
    pub density: DensityBucket,
}

impl RequestClass {
    /// Buckets a raw signature for a robot.
    pub fn from_sig(robot: &'static str, sig: SceneSig) -> RequestClass {
        RequestClass {
            robot,
            dof: sig.dof,
            obstacles: ObstacleBucket::of(sig.obstacles),
            density: DensityBucket::of(sig.density_permille),
        }
    }

    /// Classifies a scenario directly (signature + robot slug).
    pub fn of_scenario(s: &Scenario) -> RequestClass {
        RequestClass::from_sig(robot_slug(s.robot.model()), scene_sig(s))
    }

    /// Stable class id, e.g. `mobile_2d/d3/o-mid/v-thin` — the key used
    /// in [`crate::ProfileTable`], metrics, and bench JSON.
    pub fn id(&self) -> String {
        format!(
            "{}/d{}/{}/{}",
            self.robot,
            self.dof,
            self.obstacles.name(),
            self.density.name()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use moped_robot::RobotModel;
    use moped_scenarios::{CorpusEntry, Family};

    #[test]
    fn bucket_edges() {
        assert_eq!(ObstacleBucket::of(0), ObstacleBucket::Few);
        assert_eq!(ObstacleBucket::of(11), ObstacleBucket::Few);
        assert_eq!(ObstacleBucket::of(12), ObstacleBucket::Mid);
        assert_eq!(ObstacleBucket::of(47), ObstacleBucket::Mid);
        assert_eq!(ObstacleBucket::of(48), ObstacleBucket::Many);
        assert_eq!(DensityBucket::of(0), DensityBucket::Thin);
        assert_eq!(DensityBucket::of(2), DensityBucket::Thin);
        assert_eq!(DensityBucket::of(3), DensityBucket::Mid);
        assert_eq!(DensityBucket::of(19), DensityBucket::Mid);
        assert_eq!(DensityBucket::of(20), DensityBucket::Dense);
    }

    #[test]
    fn class_id_is_stable_and_deterministic() {
        let entry = CorpusEntry::new(Family::Shelf, RobotModel::Mobile2d, 1);
        let a = RequestClass::of_scenario(&entry.build());
        let b = RequestClass::of_scenario(&entry.build());
        assert_eq!(a, b);
        assert_eq!(a.id(), b.id());
        assert!(a.id().starts_with("mobile_2d/d3/"));
    }

    #[test]
    fn corpus_maps_to_a_handful_of_classes() {
        use std::collections::BTreeSet;
        let mut classes = BTreeSet::new();
        for entry in moped_scenarios::corpus() {
            classes.insert(RequestClass::of_scenario(&entry.build()).id());
        }
        // Coarse bucketing: far fewer classes than scenarios, but more
        // than one per robot (the signature must discriminate *something*
        // about the environment).
        assert!(classes.len() >= 4, "classes: {classes:?}");
        assert!(classes.len() <= 15, "classes: {classes:?}");
    }
}
