//! The online adapter: consumes quantized stage-profile snapshots at
//! epoch boundaries and rewrites the profile table with hysteresis.
//!
//! Decisions are pure integer functions of (class, current profile,
//! quantized bottleneck streak); the adapter never reads the clock and
//! holds no float state, so replaying the same observation sequence
//! reproduces the same switch sequence exactly.

use std::collections::BTreeMap;

use moped_core::{Engine, NnBackend};
use moped_obs::Bottleneck;

use crate::profile::PlannerProfile;
use crate::table::ProfileTable;

/// Which side of the collision-vs-NN split dominates a snapshot.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Regime {
    /// Collision stages dominate (arms in clutter — the Fig 3 left side).
    CollisionBound,
    /// Neighbor-search stages dominate (mobile/drone — Fig 3 right side).
    NnBound,
    /// Neither side crosses the threshold.
    Balanced,
}

/// Adapter thresholds. All quantized/integer so decisions cannot drift
/// with float formatting.
#[derive(Clone, Copy, Debug)]
pub struct AdapterConfig {
    /// A side must claim at least this many 1/256ths of instrumented
    /// self time to count as dominating (default 154 ≈ 60%).
    pub dominance_q256: u16,
    /// Consecutive epochs a regime must persist before a switch (the
    /// hysteresis rule; default 2).
    pub epochs_to_switch: u32,
    /// Snapshots with fewer instrumented ticks than this are ignored —
    /// too little evidence to steer on (default 1024).
    pub min_instrumented_ticks: u64,
}

impl Default for AdapterConfig {
    fn default() -> Self {
        AdapterConfig {
            dominance_q256: 154,
            epochs_to_switch: 2,
            min_instrumented_ticks: 1024,
        }
    }
}

/// Classifies one quantized snapshot.
pub fn regime(b: &Bottleneck, cfg: &AdapterConfig) -> Regime {
    if b.collision_q256 >= cfg.dominance_q256 {
        Regime::CollisionBound
    } else if b.nn_q256 >= cfg.dominance_q256 {
        Regime::NnBound
    } else {
        Regime::Balanced
    }
}

/// A profile switch the adapter committed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ProfileSwitch {
    /// The class whose entry was rewritten.
    pub class_id: String,
    /// The profile before the switch.
    pub from: PlannerProfile,
    /// The profile now installed.
    pub to: PlannerProfile,
    /// Human-readable cause (recorded in metrics and responses).
    pub reason: String,
}

/// Per-class hysteresis state machine over regime observations.
#[derive(Clone, Debug, Default)]
pub struct Adapter {
    cfg: AdapterConfig,
    /// class id → (last regime seen, consecutive epochs seen).
    streaks: BTreeMap<String, (Regime, u32)>,
}

impl Adapter {
    /// An adapter with the given thresholds.
    pub fn new(cfg: AdapterConfig) -> Adapter {
        Adapter {
            cfg,
            streaks: BTreeMap::new(),
        }
    }

    /// Feeds one epoch-boundary snapshot for `class_id`. When the same
    /// dominating regime has persisted for `epochs_to_switch` consecutive
    /// observations *and* the class's current profile mismatches that
    /// regime, rewrites the table entry and reports the switch. The
    /// streak resets after a switch, so flapping inputs cannot flap the
    /// table faster than the hysteresis window.
    pub fn observe(
        &mut self,
        table: &mut ProfileTable,
        class_id: &str,
        b: &Bottleneck,
    ) -> Option<ProfileSwitch> {
        if b.instrumented_ticks < self.cfg.min_instrumented_ticks {
            return None;
        }
        let r = regime(b, &self.cfg);
        let streak = match self.streaks.get_mut(class_id) {
            Some(entry) => {
                if entry.0 == r {
                    entry.1 = entry.1.saturating_add(1);
                } else {
                    *entry = (r, 1);
                }
                entry.1
            }
            None => {
                self.streaks.insert(class_id.to_string(), (r, 1));
                1
            }
        };
        if streak < self.cfg.epochs_to_switch {
            return None;
        }
        let current = table.resolve(class_id).profile;
        let (to, why) = adapted(&current, r)?;
        let reason = format!(
            "adapter: {why} ({streak} epochs, collision {}/256, nn {}/256)",
            b.collision_q256, b.nn_q256
        );
        table.insert(class_id, to.clone(), &reason);
        if let Some(entry) = self.streaks.get_mut(class_id) {
            entry.1 = 0;
        }
        Some(ProfileSwitch {
            class_id: class_id.to_string(),
            from: current,
            to,
            reason,
        })
    }
}

/// The regime→profile rewrite rule. Returns `None` when the current
/// profile already suits the regime (or the regime is balanced).
fn adapted(current: &PlannerProfile, r: Regime) -> Option<(PlannerProfile, &'static str)> {
    match r {
        Regime::CollisionBound if current.engine == Engine::RrtStar => Some((
            PlannerProfile {
                engine: Engine::RrtConnect,
                ..current.clone()
            },
            "collision-bound: rrt-connect reaches the goal in fewer edge checks",
        )),
        Regime::NnBound if !(current.nn_backend == NnBackend::SiMbr && current.sias) => Some((
            PlannerProfile {
                nn_backend: NnBackend::SiMbr,
                sias: true,
                ..current.clone()
            },
            "nn-bound: si-mbr+sias collapses the neighborhood query cost",
        )),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap(collision_q256: u16, nn_q256: u16, ticks: u64) -> Bottleneck {
        Bottleneck {
            collision_q256,
            nn_q256,
            instrumented_ticks: ticks,
        }
    }

    #[test]
    fn regime_thresholds() {
        let cfg = AdapterConfig::default();
        assert_eq!(regime(&snap(200, 30, 9999), &cfg), Regime::CollisionBound);
        assert_eq!(regime(&snap(30, 200, 9999), &cfg), Regime::NnBound);
        assert_eq!(regime(&snap(120, 120, 9999), &cfg), Regime::Balanced);
    }

    #[test]
    fn switch_requires_consecutive_epochs() {
        let mut adapter = Adapter::new(AdapterConfig::default());
        let mut table = ProfileTable::static_default();
        let class = "xarm7/d7/o-many/v-mid";
        // First collision-bound epoch: no switch yet.
        assert!(adapter
            .observe(&mut table, class, &snap(220, 10, 5000))
            .is_none());
        // An interleaved balanced epoch resets the streak.
        assert!(adapter
            .observe(&mut table, class, &snap(100, 100, 5000))
            .is_none());
        assert!(adapter
            .observe(&mut table, class, &snap(220, 10, 5000))
            .is_none());
        // Second consecutive collision-bound epoch: switch fires.
        let s = adapter
            .observe(&mut table, class, &snap(220, 10, 5000))
            .expect("switch after 2 consecutive epochs");
        assert_eq!(s.to.engine, Engine::RrtConnect);
        assert!(table.resolve(class).from_table);
        assert!(table.resolve(class).reason.starts_with("adapter: "));
        // Already adapted: further collision-bound epochs are no-ops.
        assert!(adapter
            .observe(&mut table, class, &snap(220, 10, 5000))
            .is_none());
        assert!(adapter
            .observe(&mut table, class, &snap(220, 10, 5000))
            .is_none());
    }

    #[test]
    fn thin_evidence_is_ignored() {
        let mut adapter = Adapter::new(AdapterConfig::default());
        let mut table = ProfileTable::static_default();
        for _ in 0..10 {
            assert!(adapter
                .observe(&mut table, "c", &snap(256, 0, 10))
                .is_none());
        }
        assert!(table.is_empty());
    }

    #[test]
    fn nn_bound_restores_sias_backend() {
        let mut adapter = Adapter::new(AdapterConfig::default());
        let mut table = ProfileTable::static_default();
        let mut exact = PlannerProfile::static_default();
        exact.nn_backend = NnBackend::Kd;
        exact.sias = false;
        table.insert("m/d3/o-few/v-thin", exact, "pinned exact");
        for _ in 0..2 {
            let _ = adapter.observe(&mut table, "m/d3/o-few/v-thin", &snap(10, 220, 5000));
        }
        let res = table.resolve("m/d3/o-few/v-thin");
        assert_eq!(res.profile.nn_backend, NnBackend::SiMbr);
        assert!(res.profile.sias);
    }

    #[test]
    fn observation_sequence_is_replayable() {
        let seq = [
            snap(220, 10, 5000),
            snap(220, 10, 5000),
            snap(10, 220, 5000),
            snap(10, 220, 5000),
        ];
        let run = || {
            let mut adapter = Adapter::new(AdapterConfig::default());
            let mut table = ProfileTable::static_default();
            let mut switches = Vec::new();
            for b in &seq {
                if let Some(s) = adapter.observe(&mut table, "c", b) {
                    switches.push(s);
                }
            }
            (table.serialize(), switches)
        };
        assert_eq!(run(), run());
    }
}
