//! The [`ProfileTable`]: the class→profile map the service resolves per
//! request, with a stable line-based wire form so a table can be pinned,
//! shipped, and diffed.

use std::collections::BTreeMap;

use crate::profile::PlannerProfile;

/// Wire-format header line (versioned so future fields can be added
/// without breaking pinned tables).
const HEADER: &str = "moped-profile-table v1";

/// The outcome of resolving one request class against a table.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Resolution {
    /// The class id that was looked up.
    pub class_id: String,
    /// The profile to plan with.
    pub profile: PlannerProfile,
    /// Why this profile: the calibration/adapter reason for table hits,
    /// `"default"` for misses.
    pub reason: String,
    /// Whether the class had a table entry (false → default profile).
    pub from_table: bool,
}

/// Class-keyed profile map plus the fallback default. Entries are stored
/// in a `BTreeMap`, so iteration, serialization, and diffs are all in
/// stable class-id order.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ProfileTable {
    default: PlannerProfile,
    entries: BTreeMap<String, (PlannerProfile, String)>,
}

impl ProfileTable {
    /// An empty table resolving everything to `default`.
    pub fn new(default: PlannerProfile) -> ProfileTable {
        ProfileTable {
            default,
            entries: BTreeMap::new(),
        }
    }

    /// An empty table over the static default profile.
    pub fn static_default() -> ProfileTable {
        ProfileTable::new(PlannerProfile::static_default())
    }

    /// The fallback profile.
    pub fn default_profile(&self) -> &PlannerProfile {
        &self.default
    }

    /// Installs (or replaces) the entry for `class_id`.
    pub fn insert(&mut self, class_id: &str, profile: PlannerProfile, reason: &str) {
        self.entries
            .insert(class_id.to_string(), (profile, reason.to_string()));
    }

    /// Looks `class_id` up, falling back to the default profile.
    pub fn resolve(&self, class_id: &str) -> Resolution {
        match self.entries.get(class_id) {
            Some((profile, reason)) => Resolution {
                class_id: class_id.to_string(),
                profile: profile.clone(),
                reason: reason.clone(),
                from_table: true,
            },
            None => Resolution {
                class_id: class_id.to_string(),
                profile: self.default.clone(),
                reason: "default".to_string(),
                from_table: false,
            },
        }
    }

    /// Number of class entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the table has no class entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates entries in class-id order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &PlannerProfile, &str)> {
        self.entries
            .iter()
            .map(|(k, (p, r))| (k.as_str(), p, r.as_str()))
    }

    /// Stable line-based wire form:
    ///
    /// ```text
    /// moped-profile-table v1
    /// default|rrt-star,si-mbr,1,default,inherit
    /// class|mobile_2d/d3/o-few,v-thin|rrt-connect,si-mbr,1,default,inherit|probe: ...
    /// ```
    pub fn serialize(&self) -> String {
        let mut out = String::new();
        out.push_str(HEADER);
        out.push('\n');
        out.push_str("default|");
        out.push_str(&self.default.serialize());
        out.push('\n');
        for (class, (profile, reason)) in &self.entries {
            out.push_str("class|");
            out.push_str(class);
            out.push('|');
            out.push_str(&profile.serialize());
            out.push('|');
            // Reasons are free text from this crate; strip the two wire
            // metacharacters so the line stays parseable.
            out.push_str(&reason.replace(['|', '\n'], " "));
            out.push('\n');
        }
        out
    }

    /// Parses [`ProfileTable::serialize`] output.
    pub fn parse(s: &str) -> Result<ProfileTable, String> {
        let mut lines = s.lines();
        match lines.next() {
            Some(h) if h == HEADER => {}
            other => return Err(format!("bad header: {other:?}")),
        }
        let default = match lines.next().and_then(|l| l.strip_prefix("default|")) {
            Some(wire) => PlannerProfile::parse(wire)?,
            None => return Err("missing default line".to_string()),
        };
        let mut table = ProfileTable::new(default);
        for line in lines {
            if line.is_empty() {
                continue;
            }
            let body = line
                .strip_prefix("class|")
                .ok_or_else(|| format!("bad line `{line}`"))?;
            let mut fields = body.splitn(3, '|');
            let class = fields.next().unwrap_or_default();
            let wire = fields
                .next()
                .ok_or_else(|| format!("line `{line}`: missing profile"))?;
            let reason = fields.next().unwrap_or_default();
            if class.is_empty() {
                return Err(format!("line `{line}`: empty class id"));
            }
            table.insert(class, PlannerProfile::parse(wire)?, reason);
        }
        Ok(table)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::{BudgetPolicy, RadiusPolicy};
    use moped_core::{Engine, NnBackend};

    fn connect_profile() -> PlannerProfile {
        PlannerProfile {
            engine: Engine::RrtConnect,
            nn_backend: NnBackend::SiMbr,
            sias: true,
            radius: RadiusPolicy::Default,
            budget: BudgetPolicy::Inherit,
        }
    }

    #[test]
    fn resolve_hits_entries_and_falls_back() {
        let mut t = ProfileTable::static_default();
        t.insert("mobile_2d/d3/o-few/v-thin", connect_profile(), "probe won");
        let hit = t.resolve("mobile_2d/d3/o-few/v-thin");
        assert!(hit.from_table);
        assert_eq!(hit.profile, connect_profile());
        assert_eq!(hit.reason, "probe won");
        let miss = t.resolve("xarm7/d7/o-many/v-dense");
        assert!(!miss.from_table);
        assert_eq!(&miss.profile, t.default_profile());
        assert_eq!(miss.reason, "default");
    }

    #[test]
    fn wire_round_trips_and_is_order_stable() {
        let mut t = ProfileTable::static_default();
        t.insert("z/late", connect_profile(), "second");
        t.insert("a/early", connect_profile(), "first | with pipe");
        let wire = t.serialize();
        // Entries serialize in class order regardless of insert order,
        // and reasons are sanitized.
        let a = wire.find("class|a/early").unwrap();
        let z = wire.find("class|z/late").unwrap();
        assert!(a < z);
        assert!(wire.contains("first   with pipe") || wire.contains("first  with pipe"));
        let parsed = ProfileTable::parse(&wire).expect("round trip");
        assert_eq!(parsed.len(), 2);
        assert_eq!(parsed.resolve("z/late").reason, "second");
        assert_eq!(parsed.serialize(), wire);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(ProfileTable::parse("").is_err());
        assert!(ProfileTable::parse("moped-profile-table v1\n").is_err());
        assert!(ProfileTable::parse("moped-profile-table v1\ndefault|nope").is_err());
        let good = ProfileTable::static_default().serialize();
        assert!(ProfileTable::parse(&format!("{good}mystery|x\n")).is_err());
        assert!(ProfileTable::parse(&format!(
            "{good}class||rrt-star,si-mbr,1,default,inherit|r\n"
        ))
        .is_err());
    }
}
