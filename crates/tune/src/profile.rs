//! The [`PlannerProfile`]: one complete planner configuration, the unit
//! the tuner selects, serializes, and applies.

use moped_core::{AnyIndex, Engine, NeighborIndex, NnBackend, PlannerParams};

/// Neighborhood-radius policy: a multiplier on the RRT\* rewiring-radius
/// scale `gamma` (the radius itself stays clamped by the planner).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RadiusPolicy {
    /// Leave the caller's `rewire_gamma` untouched.
    Default,
    /// Halve `gamma`: smaller neighborhoods, cheaper rewiring, for
    /// NN-bound workloads.
    Tight,
    /// Double `gamma`: wider neighborhoods, better paths, for scenes
    /// where collision checks are cheap.
    Wide,
}

impl RadiusPolicy {
    /// Stable wire name.
    pub fn name(self) -> &'static str {
        match self {
            RadiusPolicy::Default => "default",
            RadiusPolicy::Tight => "tight",
            RadiusPolicy::Wide => "wide",
        }
    }

    /// Parses [`RadiusPolicy::name`] output.
    pub fn parse(s: &str) -> Option<RadiusPolicy> {
        match s {
            "default" => Some(RadiusPolicy::Default),
            "tight" => Some(RadiusPolicy::Tight),
            "wide" => Some(RadiusPolicy::Wide),
            _ => None,
        }
    }

    /// The `gamma` multiplier this policy applies.
    pub fn scale(self) -> f64 {
        match self {
            RadiusPolicy::Default => 1.0,
            RadiusPolicy::Tight => 0.5,
            RadiusPolicy::Wide => 2.0,
        }
    }
}

/// Sample-budget policy: whether the profile caps the caller's budget.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BudgetPolicy {
    /// Use the caller's `max_samples` unchanged.
    Inherit,
    /// Cap `max_samples` at this value (never raises it).
    Cap(u32),
}

impl BudgetPolicy {
    /// Stable wire form: `inherit` or `cap:N`.
    pub fn wire(self) -> String {
        match self {
            BudgetPolicy::Inherit => "inherit".to_string(),
            BudgetPolicy::Cap(n) => format!("cap:{n}"),
        }
    }

    /// Parses [`BudgetPolicy::wire`] output.
    pub fn parse(s: &str) -> Option<BudgetPolicy> {
        if s == "inherit" {
            return Some(BudgetPolicy::Inherit);
        }
        s.strip_prefix("cap:")
            .and_then(|n| n.parse().ok())
            .map(BudgetPolicy::Cap)
    }
}

/// One complete planner configuration: the engine, the NN backend and its
/// SIAS switch, the neighborhood-radius policy, and the sample budget.
///
/// Profiles are plain values with a stable comma-delimited wire form (the
/// workspace has no serialization dependency); [`PlannerProfile::apply`]
/// and [`PlannerProfile::build_index`] turn one into a runnable planner
/// stack. Determinism contract: a profile never carries wall-clock or
/// host-dependent state, so (profile, scenario, params) fixes the plan
/// bit-for-bit.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PlannerProfile {
    /// Planner engine (RRT\*, RRT-Connect, multi-tree).
    pub engine: Engine,
    /// Neighbor-index backend.
    pub nn_backend: NnBackend,
    /// Steering-informed approximated search (SI-MBR backend only).
    pub sias: bool,
    /// Rewiring-radius policy.
    pub radius: RadiusPolicy,
    /// Sample-budget policy.
    pub budget: BudgetPolicy,
}

impl PlannerProfile {
    /// The static default the service planned every request with before
    /// the tuner existed: RRT\* on the full MOPED stack (V4).
    pub fn static_default() -> PlannerProfile {
        PlannerProfile {
            engine: Engine::RrtStar,
            nn_backend: NnBackend::SiMbr,
            sias: true,
            radius: RadiusPolicy::Default,
            budget: BudgetPolicy::Inherit,
        }
    }

    /// Human/bench label, e.g. `rrt-connect/si-mbr+sias+lci`.
    pub fn label(&self) -> String {
        format!("{}/{}", self.engine.name(), self.build_index(3).name())
    }

    /// Builds the neighbor index this profile prescribes for a
    /// `dim`-dimensional configuration space. The SI-MBR backend always
    /// keeps LCI on (O(1) insertion is never a regression); `sias` only
    /// affects SI-MBR.
    pub fn build_index(&self, dim: usize) -> AnyIndex {
        self.nn_backend.build(dim, self.sias, true)
    }

    /// Applies the radius and budget policies to caller-supplied planner
    /// parameters; everything else passes through untouched.
    pub fn apply(&self, base: &PlannerParams) -> PlannerParams {
        let mut p = base.clone();
        p.rewire_gamma = base.rewire_gamma * self.radius.scale();
        if let BudgetPolicy::Cap(n) = self.budget {
            p.max_samples = p.max_samples.min(n as usize);
        }
        p
    }

    /// Stable wire form: `engine,nn,sias,radius,budget`.
    pub fn serialize(&self) -> String {
        format!(
            "{},{},{},{},{}",
            self.engine.name(),
            self.nn_backend.name(),
            u8::from(self.sias),
            self.radius.name(),
            self.budget.wire()
        )
    }

    /// Parses [`PlannerProfile::serialize`] output.
    pub fn parse(s: &str) -> Result<PlannerProfile, String> {
        let fields: Vec<&str> = s.split(',').collect();
        if fields.len() != 5 {
            return Err(format!("profile `{s}`: expected 5 fields"));
        }
        let engine = Engine::all()
            .into_iter()
            .find(|e| e.name() == fields[0])
            .ok_or_else(|| format!("profile `{s}`: unknown engine `{}`", fields[0]))?;
        let nn_backend = NnBackend::parse(fields[1])
            .ok_or_else(|| format!("profile `{s}`: unknown backend `{}`", fields[1]))?;
        let sias = match fields[2] {
            "1" => true,
            "0" => false,
            other => return Err(format!("profile `{s}`: bad sias flag `{other}`")),
        };
        let radius = RadiusPolicy::parse(fields[3])
            .ok_or_else(|| format!("profile `{s}`: unknown radius policy `{}`", fields[3]))?;
        let budget = BudgetPolicy::parse(fields[4])
            .ok_or_else(|| format!("profile `{s}`: bad budget `{}`", fields[4]))?;
        Ok(PlannerProfile {
            engine,
            nn_backend,
            sias,
            radius,
            budget,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_round_trips_every_field_combination() {
        for engine in Engine::all() {
            for nn_backend in NnBackend::ALL {
                for sias in [false, true] {
                    for radius in [
                        RadiusPolicy::Default,
                        RadiusPolicy::Tight,
                        RadiusPolicy::Wide,
                    ] {
                        for budget in [BudgetPolicy::Inherit, BudgetPolicy::Cap(400)] {
                            let p = PlannerProfile {
                                engine,
                                nn_backend,
                                sias,
                                radius,
                                budget,
                            };
                            assert_eq!(PlannerProfile::parse(&p.serialize()), Ok(p));
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn parse_rejects_malformed_wire() {
        for bad in [
            "",
            "rrt-star,si-mbr,1,default",
            "warp-drive,si-mbr,1,default,inherit",
            "rrt-star,hash-grid,1,default,inherit",
            "rrt-star,si-mbr,2,default,inherit",
            "rrt-star,si-mbr,1,galactic,inherit",
            "rrt-star,si-mbr,1,default,cap:x",
        ] {
            assert!(PlannerProfile::parse(bad).is_err(), "accepted `{bad}`");
        }
    }

    #[test]
    fn static_default_is_the_v4_stack() {
        let p = PlannerProfile::static_default();
        assert_eq!(p.engine, Engine::RrtStar);
        assert_eq!(p.build_index(4).name(), "si-mbr+sias+lci");
        assert_eq!(p.label(), "rrt-star/si-mbr+sias+lci");
    }

    #[test]
    fn apply_scales_gamma_and_caps_budget() {
        let base = PlannerParams {
            max_samples: 1000,
            rewire_gamma: 40.0,
            ..PlannerParams::default()
        };
        let mut p = PlannerProfile::static_default();
        p.radius = RadiusPolicy::Wide;
        p.budget = BudgetPolicy::Cap(300);
        let applied = p.apply(&base);
        assert_eq!(applied.rewire_gamma, 80.0);
        assert_eq!(applied.max_samples, 300);
        // A cap larger than the caller's budget never raises it.
        p.budget = BudgetPolicy::Cap(5000);
        assert_eq!(p.apply(&base).max_samples, 1000);
    }
}
