//! The calibration probe: short seeded micro-plans that score candidate
//! profiles per request class and emit a [`ProfileTable`].
//!
//! Everything here is a pure function of (exemplar scenes, candidate
//! list, probe seed/budget): no wall clock is consulted, so the same
//! inputs always produce byte-identical tables. Callers that want probe
//! *latency* (bench, service metrics) time the `calibrate` call
//! themselves — latency is an observation about calibration, never an
//! input to it.

use std::collections::BTreeMap;

use moped_core::PlannerParams;
use moped_env::Scenario;

use crate::class::RequestClass;
use crate::plan_with_profile;
use crate::profile::{BudgetPolicy, PlannerProfile, RadiusPolicy};
use crate::table::ProfileTable;

/// Probe parameters.
#[derive(Clone, Debug)]
pub struct CalibrationConfig {
    /// Sample budget of each micro-plan (small by design: the probe's
    /// job is ranking profiles, not solving hard scenes outright).
    pub probe_samples: usize,
    /// Fixed sampler seed shared by every probe plan.
    pub probe_seed: u64,
    /// Candidate profiles, scored in order (order breaks exact ties, so
    /// earlier candidates are preferred at equal scores).
    pub candidates: Vec<PlannerProfile>,
}

impl Default for CalibrationConfig {
    fn default() -> Self {
        CalibrationConfig {
            probe_samples: 480,
            probe_seed: 0xCA11_B007,
            candidates: default_candidates(),
        }
    }
}

/// The default candidate set: the static V4 stack first (ties keep the
/// status quo), then the two connect-style engines on the MOPED stack,
/// then an exact kd-tree RRT\* for regimes where SIAS's approximate
/// neighborhoods hurt path quality.
pub fn default_candidates() -> Vec<PlannerProfile> {
    let base = PlannerProfile::static_default();
    vec![
        base.clone(),
        PlannerProfile {
            engine: moped_core::Engine::RrtConnect,
            ..base.clone()
        },
        PlannerProfile {
            engine: moped_core::Engine::MultiTree,
            ..base.clone()
        },
        PlannerProfile {
            nn_backend: moped_core::NnBackend::Kd,
            sias: false,
            ..base
        },
    ]
}

/// Aggregate probe result of one candidate over one class's exemplars.
#[derive(Clone, Debug)]
pub struct ProbeOutcome {
    /// The class probed.
    pub class_id: String,
    /// Candidate label (see [`PlannerProfile::label`]).
    pub profile_label: String,
    /// Exemplars solved within the probe budget.
    pub solved: u32,
    /// Exemplars probed.
    pub exemplars: u32,
    /// Total MAC-equivalent operations across exemplars (the latency
    /// proxy inside the determinism contract).
    pub total_macs: u64,
    /// Bit pattern of the summed path cost over solved exemplars
    /// (deterministic quality tie-break; bit order = numeric order for
    /// non-negative floats).
    pub cost_bits: u64,
}

/// Accumulates exemplar scenes per class, then probes every candidate on
/// each class and installs the winners in a [`ProfileTable`].
#[derive(Clone, Debug)]
pub struct Calibrator {
    cfg: CalibrationConfig,
    exemplars: BTreeMap<String, Vec<Scenario>>,
}

impl Calibrator {
    /// A calibrator with the given probe configuration.
    pub fn new(cfg: CalibrationConfig) -> Calibrator {
        Calibrator {
            cfg,
            exemplars: BTreeMap::new(),
        }
    }

    /// Registers one exemplar scene (classified internally).
    pub fn add_scenario(&mut self, s: &Scenario) {
        let class = RequestClass::of_scenario(s).id();
        self.exemplars.entry(class).or_default().push(s.clone());
    }

    /// Total exemplars registered.
    pub fn exemplar_count(&self) -> usize {
        self.exemplars.values().map(Vec::len).sum()
    }

    /// Classes with at least one exemplar.
    pub fn class_count(&self) -> usize {
        self.exemplars.len()
    }

    /// Probes every candidate on every class and returns the calibrated
    /// table plus the full probe record (for bench stamps and tests).
    /// The winner per class maximizes solved count, then minimizes total
    /// MACs, then summed path cost, then keeps the earliest candidate.
    pub fn calibrate(&self) -> (ProfileTable, Vec<ProbeOutcome>) {
        let mut table = ProfileTable::static_default();
        let mut outcomes = Vec::new();
        let probe_params = PlannerParams {
            max_samples: self.cfg.probe_samples,
            seed: self.cfg.probe_seed,
            ..PlannerParams::default()
        };
        for (class_id, scenes) in &self.exemplars {
            let mut best: Option<(usize, u32, u64, u64)> = None; // (idx, solved, macs, cost)
            for (idx, candidate) in self.cfg.candidates.iter().enumerate() {
                let mut solved = 0u32;
                let mut total_macs = 0u64;
                let mut total_cost = 0.0f64;
                for scene in scenes {
                    let r = plan_with_profile(scene, candidate, &probe_params);
                    if r.solved() {
                        solved += 1;
                        total_cost += r.path_cost;
                    }
                    total_macs += r.stats.total_ops().mac_equiv();
                }
                let cost_bits = total_cost.to_bits();
                outcomes.push(ProbeOutcome {
                    class_id: class_id.clone(),
                    profile_label: candidate.label(),
                    solved,
                    exemplars: scenes.len() as u32,
                    total_macs,
                    cost_bits,
                });
                let better = match &best {
                    None => true,
                    Some((_, s, m, c)) => {
                        (solved, u64::MAX - total_macs, u64::MAX - cost_bits)
                            > (*s, u64::MAX - *m, u64::MAX - *c)
                    }
                };
                if better {
                    best = Some((idx, solved, total_macs, cost_bits));
                }
            }
            if let Some((idx, solved, macs, _)) = best {
                let winner = &self.cfg.candidates[idx];
                let reason = format!(
                    "probe: {} solved {}/{} at {} macs (seed {:#x}, {} samples)",
                    winner.label(),
                    solved,
                    scenes.len(),
                    macs,
                    self.cfg.probe_seed,
                    self.cfg.probe_samples
                );
                table.insert(class_id, winner.clone(), &reason);
            }
        }
        (table, outcomes)
    }
}

/// A shelf-style micro-budget candidate: RRT-Connect with a tight budget
/// cap, used by tests and docs as the worked example.
pub fn connect_capped(cap: u32) -> PlannerProfile {
    PlannerProfile {
        engine: moped_core::Engine::RrtConnect,
        budget: BudgetPolicy::Cap(cap),
        radius: RadiusPolicy::Default,
        ..PlannerProfile::static_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use moped_robot::RobotModel;
    use moped_scenarios::{CorpusEntry, Family};

    fn quick_cfg() -> CalibrationConfig {
        CalibrationConfig {
            probe_samples: 200,
            ..CalibrationConfig::default()
        }
    }

    #[test]
    fn calibration_is_deterministic() {
        let mut cal = Calibrator::new(quick_cfg());
        for family in [Family::Shelf, Family::Clutter] {
            cal.add_scenario(&CorpusEntry::new(family, RobotModel::Mobile2d, 1).build());
        }
        let (a, _) = cal.calibrate();
        let (b, _) = cal.calibrate();
        assert_eq!(a.serialize(), b.serialize());
        assert!(!a.is_empty());
    }

    #[test]
    fn probe_outcomes_cover_every_class_candidate_pair() {
        let mut cal = Calibrator::new(quick_cfg());
        cal.add_scenario(&CorpusEntry::new(Family::Shelf, RobotModel::Mobile2d, 1).build());
        cal.add_scenario(&CorpusEntry::new(Family::Shelf, RobotModel::Mobile2d, 2).build());
        let (table, outcomes) = cal.calibrate();
        assert_eq!(cal.exemplar_count(), 2);
        let classes = cal.class_count();
        assert_eq!(outcomes.len(), classes * default_candidates().len());
        for o in &outcomes {
            assert!(o.solved <= o.exemplars);
            assert!(o.total_macs > 0);
        }
        // Every probed class got a table entry with a probe reason.
        for (_, _, reason) in table.iter() {
            assert!(reason.starts_with("probe: "), "{reason}");
        }
        assert_eq!(table.len(), classes);
    }

    #[test]
    fn shelf_calibration_picks_a_connect_engine() {
        // The motivating case: on shelf rooms the bidirectional engines
        // thread the door in a fraction of the single-tree engine's
        // operations, so once the probe budget is large enough to solve
        // the scene at all, a connect engine wins the class.
        let mut cal = Calibrator::new(CalibrationConfig {
            probe_samples: 800,
            ..CalibrationConfig::default()
        });
        for seed in [1, 2] {
            cal.add_scenario(&CorpusEntry::new(Family::Shelf, RobotModel::Mobile2d, seed).build());
        }
        let (table, _) = cal.calibrate();
        let class = RequestClass::of_scenario(
            &CorpusEntry::new(Family::Shelf, RobotModel::Mobile2d, 1).build(),
        );
        let res = table.resolve(&class.id());
        assert!(res.from_table);
        assert_ne!(
            res.profile.engine,
            moped_core::Engine::RrtStar,
            "probe should move shelf off single-tree RRT*: {}",
            res.reason
        );
    }
}
