//! Property-based tests for the hardware model: pipeline scheduling laws,
//! LFSR statistics, and fixed-point bounds.

use moped_hw::fixed::QFormat;
use moped_hw::lfsr::Lfsr16;
use moped_hw::pipeline::{simulate, RoundCycles};
use proptest::prelude::*;

fn arb_rounds(n: std::ops::Range<usize>) -> impl Strategy<Value = Vec<RoundCycles>> {
    prop::collection::vec((1u64..2000, 1u64..2000), n).prop_map(|v| {
        v.into_iter()
            .map(|(ns, cc)| RoundCycles { ns, cc })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Scheduling laws for any trace:
    /// * the speculative schedule is never worse than serial + repair
    ///   overhead,
    /// * it is lower-bounded by each unit's total busy time,
    /// * buffer occupancies stay within the architected sizes.
    #[test]
    fn pipeline_scheduling_laws(rounds in arb_rounds(1..300)) {
        let rep = simulate(&rounds);
        let repair_total = rounds.len() as u64 * moped_hw::params::overhead::REPAIR_CYCLES;
        prop_assert!(rep.speculative_cycles <= rep.serial_cycles + repair_total);
        let ns_busy: u64 = rounds.iter().map(|r| r.ns).sum::<u64>() + repair_total;
        let cc_busy: u64 = rounds.iter().map(|r| r.cc).sum();
        prop_assert!(rep.speculative_cycles >= ns_busy.max(cc_busy));
        prop_assert!(rep.max_fifo_occupancy <= moped_hw::params::FIFO_DEPTH);
        // The serial schedule is exactly the sum of stages.
        prop_assert_eq!(rep.serial_cycles, rounds.iter().map(|r| r.ns + r.cc).sum::<u64>());
    }

    /// Speedup is bounded by the two-stage pipeline theoretical maximum.
    #[test]
    fn pipeline_speedup_bounded(rounds in arb_rounds(2..200)) {
        let rep = simulate(&rounds);
        prop_assert!(rep.speedup() <= 2.0 + 1e-9);
        prop_assert!(rep.speedup() > 0.49);
    }

    /// Monotonicity: making every CC strictly cheaper never slows the
    /// speculative schedule.
    #[test]
    fn cheaper_cc_never_hurts(rounds in arb_rounds(2..100)) {
        let rep = simulate(&rounds);
        let cheaper: Vec<RoundCycles> = rounds
            .iter()
            .map(|r| RoundCycles { ns: r.ns, cc: (r.cc / 2).max(1) })
            .collect();
        let rep2 = simulate(&cheaper);
        prop_assert!(rep2.speculative_cycles <= rep.speculative_cycles);
    }

    /// Fixed-point round-trips stay within half a resolution step and are
    /// idempotent, for any format and in-range value.
    #[test]
    fn fixed_point_error_bound(frac in 0u8..15, v in -100.0..100.0f64) {
        let fmt = QFormat::new(frac);
        prop_assume!(v.abs() < fmt.max_value());
        let r = fmt.roundtrip(v);
        prop_assert!((r - v).abs() <= fmt.resolution() / 2.0 + 1e-12);
        prop_assert_eq!(fmt.roundtrip(r), r);
    }

    /// LFSR streams from different non-zero seeds eventually coincide in
    /// sequence (same cycle) but never hit zero and pass a crude
    /// mean-uniformity check.
    #[test]
    fn lfsr_statistics(seed in 1u16..u16::MAX) {
        let mut l = Lfsr16::new(seed);
        let mut sum = 0.0;
        for _ in 0..4096 {
            let u = l.next_unit();
            prop_assert!((0.0..1.0).contains(&u));
            sum += u;
        }
        let mean = sum / 4096.0;
        prop_assert!((mean - 0.5).abs() < 0.05, "mean {mean} far from 0.5");
    }
}
