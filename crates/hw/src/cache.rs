//! Hierarchical multi-level caching model (§IV-C).
//!
//! Three caching opportunities are modelled, each converting SRAM word
//! accesses into cheaper cache-structure accesses:
//!
//! * **Unit level** — the Top NS Cache holds the top levels of the
//!   SI-MBR-Tree; every search starts at the root, so visits at shallow
//!   depths are near-guaranteed hits (temporal locality).
//! * **Module level** — the search-trace cache retains the MBRs visited
//!   on the way to the chosen leaf; the immediately following insertion
//!   updates exactly those nodes, and the concurrent speculative search
//!   re-reads them, so serving them from the trace avoids a bank conflict
//!   on the Bottom NS SRAM.
//! * **Engine level** — the neighborhood cache hands the Tree Extension
//!   Module's identified neighbor set to the Tree Refinement Module
//!   without re-querying the NS memories.

use moped_simbr::SearchStats;

use crate::params;

/// Outcome of applying the cache model to a planning run's traversal
/// statistics.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct CacheReport {
    /// Node visits served by the Top NS Cache.
    pub unit_hits: u64,
    /// Node visits that had to touch the Bottom NS SRAM.
    pub unit_misses: u64,
    /// Word accesses avoided by the trace cache (module level).
    pub trace_words_saved: u64,
    /// Word accesses avoided by the neighborhood cache (engine level).
    pub neighborhood_words_saved: u64,
    /// Total SRAM word-energy (joules) without any caching.
    pub energy_uncached_j: f64,
    /// Total memory energy (joules) with the three-level hierarchy.
    pub energy_cached_j: f64,
}

impl CacheReport {
    /// Fraction of node visits served by the top cache.
    pub fn unit_hit_rate(&self) -> f64 {
        let total = self.unit_hits + self.unit_misses;
        if total == 0 {
            0.0
        } else {
            self.unit_hits as f64 / total as f64
        }
    }

    /// Memory-energy reduction factor from caching.
    pub fn energy_saving(&self) -> f64 {
        if self.energy_cached_j <= 0.0 {
            1.0
        } else {
            self.energy_uncached_j / self.energy_cached_j
        }
    }
}

/// Configuration of the cache hierarchy.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CacheConfig {
    /// Tree levels (from the root) held in the Top NS Cache.
    pub cached_levels: usize,
    /// Words per cached MBR node (2·d plus a pointer word).
    pub words_per_node: u64,
    /// Average neighborhood entries shared with the refinement module.
    pub neighborhood_entries: u64,
}

impl Default for CacheConfig {
    /// Two cached top levels; 7-DoF worst-case node payload.
    fn default() -> Self {
        CacheConfig {
            cached_levels: 2,
            words_per_node: 15,
            neighborhood_entries: 6,
        }
    }
}

/// Applies the cache model to accumulated SI-MBR search statistics.
///
/// `accepted_rounds` scales the module/engine-level savings (one trace
/// reuse and one neighborhood handoff per accepted sample).
pub fn apply(stats: &SearchStats, accepted_rounds: u64, cfg: &CacheConfig) -> CacheReport {
    let mut report = CacheReport::default();
    for (depth, &visits) in stats.visits_by_depth.iter().enumerate() {
        if depth < cfg.cached_levels {
            report.unit_hits += visits;
        } else {
            report.unit_misses += visits;
        }
    }
    // Module level: the insertion path (≈ tree height words) re-served
    // from the trace once per accepted round.
    let height = stats.visits_by_depth.len() as u64;
    report.trace_words_saved = accepted_rounds * height * cfg.words_per_node;
    // Engine level: the refinement module re-reads the neighbor set.
    report.neighborhood_words_saved =
        accepted_rounds * cfg.neighborhood_entries * cfg.words_per_node;

    let total_visit_words = (report.unit_hits + report.unit_misses) * cfg.words_per_node;
    let reread_words = report.trace_words_saved + report.neighborhood_words_saved;
    report.energy_uncached_j =
        (total_visit_words + reread_words) as f64 * params::SRAM_WORD_ENERGY_J;
    report.energy_cached_j = (report.unit_misses * cfg.words_per_node) as f64
        * params::SRAM_WORD_ENERGY_J
        + (report.unit_hits * cfg.words_per_node + reread_words) as f64
            * params::CACHE_WORD_ENERGY_J;
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats_with_depths(depths: &[u64]) -> SearchStats {
        SearchStats {
            visits_by_depth: depths.to_vec(),
            nodes_visited: depths.iter().sum(),
            ..SearchStats::default()
        }
    }

    #[test]
    fn empty_stats_yield_empty_report() {
        let r = apply(&SearchStats::default(), 0, &CacheConfig::default());
        assert_eq!(r.unit_hits + r.unit_misses, 0);
        assert_eq!(r.unit_hit_rate(), 0.0);
        assert_eq!(r.energy_saving(), 1.0);
    }

    #[test]
    fn top_levels_hit_bottom_levels_miss() {
        let s = stats_with_depths(&[100, 300, 500, 700]);
        let r = apply(&s, 0, &CacheConfig::default());
        assert_eq!(r.unit_hits, 400);
        assert_eq!(r.unit_misses, 1200);
        assert!((r.unit_hit_rate() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn caching_always_saves_energy() {
        let s = stats_with_depths(&[1000, 2000, 4000]);
        let r = apply(&s, 500, &CacheConfig::default());
        assert!(r.energy_cached_j < r.energy_uncached_j);
        assert!(r.energy_saving() > 1.0);
    }

    #[test]
    fn deeper_cache_config_saves_more() {
        let s = stats_with_depths(&[100, 200, 400, 800, 1600]);
        let shallow = apply(
            &s,
            100,
            &CacheConfig {
                cached_levels: 1,
                ..CacheConfig::default()
            },
        );
        let deep = apply(
            &s,
            100,
            &CacheConfig {
                cached_levels: 4,
                ..CacheConfig::default()
            },
        );
        assert!(deep.energy_cached_j < shallow.energy_cached_j);
        assert!(deep.unit_hit_rate() > shallow.unit_hit_rate());
    }

    #[test]
    fn accepted_rounds_scale_reuse_savings() {
        let s = stats_with_depths(&[10, 20]);
        let few = apply(&s, 10, &CacheConfig::default());
        let many = apply(&s, 1000, &CacheConfig::default());
        assert!(many.trace_words_saved > few.trace_words_saved);
        assert!(many.neighborhood_words_saved > few.neighborhood_words_saved);
    }

    #[test]
    fn root_heavy_traffic_has_high_hit_rate() {
        // Real searches visit the root every time but only a few deep
        // nodes thanks to MINDIST pruning — model should show a strong
        // hit rate.
        let s = stats_with_depths(&[5000, 9000, 4000, 900, 100]);
        let r = apply(&s, 0, &CacheConfig::default());
        assert!(r.unit_hit_rate() > 0.7);
    }
}
