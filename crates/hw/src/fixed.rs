//! 16-bit fixed-point quantization — the on-chip number format.
//!
//! The MOPED datapath stores every coordinate, halfwidth, and rotation
//! entry as a 16-bit value (Fig 11). This module provides Q-format
//! quantization and the helpers used to validate that planner decisions
//! are stable under that precision.

use moped_geometry::Config;

/// A Q-format descriptor: signed 16-bit with `frac_bits` fractional bits.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct QFormat {
    frac_bits: u8,
}

impl QFormat {
    /// Workspace-coordinate format Q9.6: range ±512, resolution 1/64 —
    /// covers the 300-unit workspace with sub-unit precision.
    pub const WORKSPACE: QFormat = QFormat { frac_bits: 6 };

    /// Angle / rotation-matrix format Q2.13: range ±4, resolution ≈1.2e-4
    /// — covers radians and unit-matrix entries.
    pub const ANGLE: QFormat = QFormat { frac_bits: 13 };

    /// Creates a format with the given fractional bits.
    ///
    /// # Panics
    ///
    /// Panics if `frac_bits >= 16`.
    pub const fn new(frac_bits: u8) -> Self {
        assert!(frac_bits < 16, "at most 15 fractional bits");
        QFormat { frac_bits }
    }

    /// Fractional bit count.
    pub const fn frac_bits(&self) -> u8 {
        self.frac_bits
    }

    /// Smallest representable increment.
    pub fn resolution(&self) -> f64 {
        1.0 / f64::from(1u32 << self.frac_bits)
    }

    /// Largest representable magnitude.
    pub fn max_value(&self) -> f64 {
        f64::from(i16::MAX) * self.resolution()
    }

    /// Quantizes a value to the nearest representable fixed-point code
    /// (saturating at the format limits).
    pub fn quantize(&self, v: f64) -> i16 {
        let scaled = v * f64::from(1u32 << self.frac_bits);
        scaled
            .round()
            .clamp(f64::from(i16::MIN), f64::from(i16::MAX)) as i16
    }

    /// Decodes a fixed-point code back to `f64`.
    pub fn dequantize(&self, raw: i16) -> f64 {
        f64::from(raw) * self.resolution()
    }

    /// Round-trips a value through the format (`dequantize(quantize(v))`).
    pub fn roundtrip(&self, v: f64) -> f64 {
        self.dequantize(self.quantize(v))
    }

    /// Quantizes every coordinate of a configuration.
    pub fn roundtrip_config(&self, q: &Config) -> Config {
        let coords: Vec<f64> = q.as_slice().iter().map(|v| self.roundtrip(*v)).collect();
        Config::new(&coords)
    }
}

/// Maximum absolute quantization error a single round-trip can introduce
/// (half a resolution step).
pub fn max_roundtrip_error(fmt: QFormat) -> f64 {
    fmt.resolution() / 2.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_error_is_bounded() {
        let fmt = QFormat::WORKSPACE;
        let bound = max_roundtrip_error(fmt) + 1e-12;
        for i in 0..2000 {
            let v = (i as f64) * 0.1537 - 150.0;
            assert!((fmt.roundtrip(v) - v).abs() <= bound, "v={v}");
        }
    }

    #[test]
    fn workspace_format_covers_300_units() {
        assert!(QFormat::WORKSPACE.max_value() > 300.0);
        assert!(QFormat::WORKSPACE.resolution() <= 1.0 / 32.0);
    }

    #[test]
    fn angle_format_covers_pi() {
        assert!(QFormat::ANGLE.max_value() > std::f64::consts::PI);
        assert!(QFormat::ANGLE.resolution() < 1e-3);
    }

    #[test]
    fn saturation_at_limits() {
        let fmt = QFormat::WORKSPACE;
        assert_eq!(fmt.quantize(1e9), i16::MAX);
        assert_eq!(fmt.quantize(-1e9), i16::MIN);
    }

    #[test]
    fn quantization_is_idempotent() {
        let fmt = QFormat::new(8);
        for v in [-3.7, 0.0, 1.0 / 256.0, 99.99] {
            let once = fmt.roundtrip(v);
            assert_eq!(once, fmt.roundtrip(once));
        }
    }

    #[test]
    fn config_roundtrip_preserves_dimension() {
        let fmt = QFormat::WORKSPACE;
        let q = Config::new(&[1.01, -2.02, 3.03, 250.7]);
        let r = fmt.roundtrip_config(&q);
        assert_eq!(r.dim(), 4);
        for i in 0..4 {
            assert!((r[i] - q[i]).abs() <= max_roundtrip_error(fmt) + 1e-12);
        }
    }

    #[test]
    fn nearest_neighbor_decisions_survive_quantization() {
        // If two candidate distances differ by more than the worst-case
        // quantization skew, the fixed-point compare agrees with f64.
        let fmt = QFormat::WORKSPACE;
        let q = Config::new(&[10.3, 20.7]);
        let a = Config::new(&[11.0, 21.0]); // clearly nearer
        let b = Config::new(&[40.0, -3.0]);
        let (qq, aq, bq) = (
            fmt.roundtrip_config(&q),
            fmt.roundtrip_config(&a),
            fmt.roundtrip_config(&b),
        );
        assert_eq!(
            a.distance(&q) < b.distance(&q),
            aq.distance(&qq) < bq.distance(&qq)
        );
    }

    #[test]
    #[should_panic]
    fn too_many_frac_bits_rejected() {
        let _ = QFormat::new(16);
    }
}
