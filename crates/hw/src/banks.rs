//! SRAM bank-contention simulation (§IV-C module/engine-level caching).
//!
//! The paper motivates the search-trace cache and the neighborhood cache
//! not by energy but by **port conflicts**: the SI-MBR operator's
//! insertion updates, the speculative search's reads, and the refinement
//! module's neighborhood reads all target the same NS memories at the
//! same time. This module simulates single-ported banks under round-robin
//! arbitration so those conflicts (and the caches' effect on them) are
//! measured rather than asserted.

use std::collections::VecDeque;

/// One memory request: `words` sequential words from `bank`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Request {
    /// Target bank index.
    pub bank: usize,
    /// Number of 16-bit words (one word per cycle on a hit-free port).
    pub words: u64,
}

/// A requestor's ordered access stream.
#[derive(Clone, Debug)]
pub struct Stream {
    /// Requestor name (for the report).
    pub name: &'static str,
    /// Requests issued back-to-back.
    pub requests: Vec<Request>,
}

/// Result of a contention simulation.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ContentionReport {
    /// Total cycles until every stream drained.
    pub cycles: u64,
    /// Lower bound: the busiest single stream's demand.
    pub critical_stream_cycles: u64,
    /// Cycles each stream spent stalled on an occupied port, in stream
    /// order.
    pub stalls: Vec<(String, u64)>,
}

impl ContentionReport {
    /// Total stall cycles across all streams.
    pub fn total_stalls(&self) -> u64 {
        self.stalls.iter().map(|(_, s)| s).sum()
    }
}

/// Simulates `streams` against `banks` single-ported banks with
/// round-robin arbitration (fair, age-independent).
///
/// Each stream issues its word accesses in order; in any cycle a bank
/// serves exactly one requestor, and losing requestors stall. Word
/// accesses within one request target the same bank consecutively.
///
/// # Panics
///
/// Panics if `banks == 0` or any request names a bank out of range.
pub fn simulate(streams: &[Stream], banks: usize) -> ContentionReport {
    assert!(banks > 0, "need at least one bank");
    // Flatten each stream into a word-level queue of bank targets.
    let mut queues: Vec<VecDeque<usize>> = streams
        .iter()
        .map(|s| {
            let mut q = VecDeque::new();
            for r in &s.requests {
                assert!(r.bank < banks, "bank {} out of range {banks}", r.bank);
                for _ in 0..r.words {
                    q.push_back(r.bank);
                }
            }
            q
        })
        .collect();
    let mut stalls = vec![0u64; streams.len()];
    let critical = queues.iter().map(|q| q.len() as u64).max().unwrap_or(0);

    let mut cycles = 0u64;
    let mut rr = 0usize; // rotating priority
    while queues.iter().any(|q| !q.is_empty()) {
        let mut bank_taken = vec![false; banks];
        // Grant in rotating order.
        let n = queues.len();
        for k in 0..n {
            let i = (rr + k) % n;
            if let Some(&bank) = queues[i].front() {
                if !bank_taken[bank] {
                    bank_taken[bank] = true;
                    queues[i].pop_front();
                } else {
                    stalls[i] += 1;
                }
            }
        }
        rr = (rr + 1) % n.max(1);
        cycles += 1;
    }

    ContentionReport {
        cycles,
        critical_stream_cycles: critical,
        stalls: streams
            .iter()
            .zip(stalls)
            .map(|(s, st)| (s.name.to_string(), st))
            .collect(),
    }
}

/// Bank ids of the Fig 11 floorplan used by the NS-side streams.
pub mod bank_ids {
    /// Bottom NS SRAM (SI-MBR nodes below the cached top).
    pub const BOTTOM_NS: usize = 0;
    /// Top NS Cache (its port is separate from the SRAM's).
    pub const TOP_NS_CACHE: usize = 1;
    /// Neighborhood cache shared with the refinement module.
    pub const NEIGHBORHOOD: usize = 2;
    /// EXP node SRAM (configurations).
    pub const EXP_NODE: usize = 3;
    /// Number of banks in this slice of the floorplan.
    pub const COUNT: usize = 4;
}

/// Builds the three §IV-C contention streams for one planning round.
///
/// * `search_words` — the speculative search's node reads,
/// * `insert_words` — the SI-MBR operator's path update,
/// * `refine_words` — the refinement module's neighborhood reads.
///
/// With `caches_enabled`, the insertion path is served by the trace cache
/// and the refinement reads by the neighborhood cache, so only the search
/// stream touches the Bottom NS SRAM — the conflict disappears by
/// construction, matching the paper's design intent.
pub fn round_streams(
    search_words: u64,
    insert_words: u64,
    refine_words: u64,
    caches_enabled: bool,
) -> Vec<Stream> {
    let (insert_bank, refine_bank) = if caches_enabled {
        (bank_ids::TOP_NS_CACHE, bank_ids::NEIGHBORHOOD)
    } else {
        (bank_ids::BOTTOM_NS, bank_ids::BOTTOM_NS)
    };
    vec![
        Stream {
            name: "speculative-search",
            requests: vec![Request {
                bank: bank_ids::BOTTOM_NS,
                words: search_words,
            }],
        },
        Stream {
            name: "si-mbr-insert",
            requests: vec![Request {
                bank: insert_bank,
                words: insert_words,
            }],
        },
        Stream {
            name: "refinement-reads",
            requests: vec![Request {
                bank: refine_bank,
                words: refine_words,
            }],
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disjoint_banks_run_fully_parallel() {
        let streams = vec![
            Stream {
                name: "a",
                requests: vec![Request {
                    bank: 0,
                    words: 100,
                }],
            },
            Stream {
                name: "b",
                requests: vec![Request {
                    bank: 1,
                    words: 100,
                }],
            },
        ];
        let rep = simulate(&streams, 2);
        assert_eq!(rep.cycles, 100);
        assert_eq!(rep.total_stalls(), 0);
    }

    #[test]
    fn same_bank_serializes() {
        let streams = vec![
            Stream {
                name: "a",
                requests: vec![Request {
                    bank: 0,
                    words: 100,
                }],
            },
            Stream {
                name: "b",
                requests: vec![Request {
                    bank: 0,
                    words: 100,
                }],
            },
        ];
        let rep = simulate(&streams, 1);
        assert_eq!(rep.cycles, 200, "single port must serialize");
        assert!(rep.total_stalls() > 0);
    }

    #[test]
    fn round_robin_is_fair() {
        let streams = vec![
            Stream {
                name: "a",
                requests: vec![Request {
                    bank: 0,
                    words: 300,
                }],
            },
            Stream {
                name: "b",
                requests: vec![Request {
                    bank: 0,
                    words: 300,
                }],
            },
        ];
        let rep = simulate(&streams, 1);
        let a = rep.stalls[0].1 as f64;
        let b = rep.stalls[1].1 as f64;
        assert!(
            (a - b).abs() / a.max(b) < 0.05,
            "stalls should split evenly: {a} vs {b}"
        );
    }

    #[test]
    fn caches_eliminate_ns_bank_conflicts() {
        let uncached = simulate(&round_streams(400, 120, 90, false), bank_ids::COUNT);
        let cached = simulate(&round_streams(400, 120, 90, true), bank_ids::COUNT);
        assert!(uncached.total_stalls() > 0, "shared bank must conflict");
        assert_eq!(
            cached.total_stalls(),
            0,
            "caches route around the shared bank"
        );
        assert!(cached.cycles < uncached.cycles);
        // With caches, latency collapses to the critical stream.
        assert_eq!(cached.cycles, cached.critical_stream_cycles);
    }

    #[test]
    fn empty_streams_cost_nothing() {
        let rep = simulate(&[], 2);
        assert_eq!(rep.cycles, 0);
        let rep = simulate(&round_streams(0, 0, 0, false), bank_ids::COUNT);
        assert_eq!(rep.cycles, 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_bank_rejected() {
        let streams = vec![Stream {
            name: "x",
            requests: vec![Request { bank: 5, words: 1 }],
        }];
        let _ = simulate(&streams, 2);
    }
}
