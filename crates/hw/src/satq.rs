//! Bit-accurate 16-bit fixed-point SAT datapath.
//!
//! The MOPED checker operates on 16-bit operands (Fig 11: every OBB/AABB
//! field is a 16-bit value). This module implements the OBB–OBB
//! separating-axis test exactly as the integer datapath would execute it —
//! `i16` inputs, `i64` accumulators, no floating point — so the
//! reproduction can measure how often the quantized hardware disagrees
//! with an exact double-precision checker (it must be rare and confined
//! to razor-thin contacts, or the synthesized design would mis-plan).
//!
//! Number formats follow [`crate::fixed`]: workspace coordinates in Q9.6,
//! rotation-matrix entries in Q2.13.

use moped_geometry::{Obb, OpCount};

use crate::fixed::QFormat;

/// A quantized 3D OBB: the exact bits the obstacle OBB SRAM would hold.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct QObb {
    /// Center, Q9.6.
    pub center: [i16; 3],
    /// Positive halfwidths, Q9.6.
    pub half: [i16; 3],
    /// Row-major rotation entries, Q2.13.
    pub rot: [[i16; 3]; 3],
}

impl QObb {
    /// Quantizes an algorithm-level OBB into the on-chip encoding.
    pub fn from_obb(o: &Obb) -> QObb {
        let ws = QFormat::WORKSPACE;
        let ang = QFormat::ANGLE;
        let c = o.center();
        let h = o.half_extents();
        let r = o.rotation();
        QObb {
            center: [ws.quantize(c.x), ws.quantize(c.y), ws.quantize(c.z)],
            half: [ws.quantize(h.x), ws.quantize(h.y), ws.quantize(h.z)],
            rot: [
                [
                    ang.quantize(r.m[0][0]),
                    ang.quantize(r.m[0][1]),
                    ang.quantize(r.m[0][2]),
                ],
                [
                    ang.quantize(r.m[1][0]),
                    ang.quantize(r.m[1][1]),
                    ang.quantize(r.m[1][2]),
                ],
                [
                    ang.quantize(r.m[2][0]),
                    ang.quantize(r.m[2][1]),
                    ang.quantize(r.m[2][2]),
                ],
            ],
        }
    }

    /// Dequantizes back to an algorithm-level OBB (for cross-checking).
    pub fn to_obb(&self) -> Obb {
        let ws = QFormat::WORKSPACE;
        let ang = QFormat::ANGLE;
        let de = |v: i16| ws.dequantize(v);
        let da = |v: i16| ang.dequantize(v);
        // Halfwidths are clamped non-negative: quantization of a tiny
        // positive halfwidth can round to zero but never below.
        let half = moped_geometry::Vec3::new(
            de(self.half[0]).max(0.0),
            de(self.half[1]).max(0.0),
            de(self.half[2]).max(0.0),
        );
        let rot = moped_geometry::Mat3::from_rows(
            [da(self.rot[0][0]), da(self.rot[0][1]), da(self.rot[0][2])],
            [da(self.rot[1][0]), da(self.rot[1][1]), da(self.rot[1][2])],
            [da(self.rot[2][0]), da(self.rot[2][1]), da(self.rot[2][2])],
        );
        Obb::new(
            moped_geometry::Vec3::new(de(self.center[0]), de(self.center[1]), de(self.center[2])),
            half,
            rot,
        )
    }
}

// Fraction bits of the angle format, fixed at the datapath boundary
// (workspace values stay in Q9.6 and never need an explicit shift).
const ANG_FRAC: u32 = 13; // Q2.13

/// Integer 15-axis OBB–OBB SAT on quantized boxes.
///
/// All products are exact in `i64`; comparisons align binary points by
/// shifting, so the only inexactness relative to real arithmetic is the
/// input quantization itself. A one-ULP conservative slack is added to
/// the radius side of every comparison, biasing disagreements toward
/// *reporting contact* (a false positive merely costs path quality; a
/// false negative would collide the robot).
// Indexed loops keep the i/j axis indices aligned with the SAT tables.
#[allow(clippy::needless_range_loop)]
pub fn obb_obb_q(a: &QObb, b: &QObb, ops: &mut OpCount) -> bool {
    ops.sat_queries += 1;
    // r[i][j] = a_i · b_j, Q2.13 × Q2.13 → Q4.26 in i64.
    let mut r = [[0i64; 3]; 3];
    for i in 0..3 {
        for j in 0..3 {
            let mut acc = 0i64;
            for k in 0..3 {
                acc += i64::from(a.rot[k][i]) * i64::from(b.rot[k][j]);
            }
            r[i][j] = acc;
        }
    }
    ops.mul += 27;
    ops.add += 18;

    // t = (b.center - a.center) rotated into A's frame:
    // Q9.6 diff × Q2.13 → Q11.19.
    let mut t = [0i64; 3];
    for i in 0..3 {
        let mut acc = 0i64;
        for k in 0..3 {
            let d = i64::from(b.center[k]) - i64::from(a.center[k]);
            acc += d * i64::from(a.rot[k][i]);
        }
        t[i] = acc;
    }
    ops.mul += 9;
    ops.add += 9;

    let abs_r: [[i64; 3]; 3] = {
        let mut m = [[0i64; 3]; 3];
        for i in 0..3 {
            for j in 0..3 {
                // +1 ULP robustness slack (the fixed-point analogue of
                // the float epsilon in the reference kernel).
                m[i][j] = r[i][j].abs() + 1;
            }
        }
        m
    };
    ops.add += 9;

    let ha = [
        i64::from(a.half[0]),
        i64::from(a.half[1]),
        i64::from(a.half[2]),
    ];
    let hb = [
        i64::from(b.half[0]),
        i64::from(b.half[1]),
        i64::from(b.half[2]),
    ];

    // Axis class 1: A's axes. ra is Q9.6; rb is Q9.6×Q4.26 → Q13.32;
    // t is Q11.19. Align everything to frac = 6+26 = 32.
    for i in 0..3 {
        let ra = ha[i] << (2 * ANG_FRAC); // Q.6 → Q.32
        let rb = hb[0] * abs_r[i][0] + hb[1] * abs_r[i][1] + hb[2] * abs_r[i][2];
        let tp = t[i].abs() << ANG_FRAC; // Q.19 → Q.32
        ops.mul += 3;
        ops.add += 3;
        ops.cmp += 1;
        if tp > ra + rb {
            return false;
        }
    }

    // Axis class 2: B's axes. tp = Σ t_k · r[k][j]: Q.19 × Q.26-scale —
    // t is Q.19, r is Q.26? No: r entries are Q4.26? They are products of
    // two Q2.13 values → frac 26. t·r → frac 19+26 = 45. ra/rb at frac
    // 6+26 = 32 must be shifted by 13 to 45.
    for j in 0..3 {
        let ra = ha[0] * abs_r[0][j] + ha[1] * abs_r[1][j] + ha[2] * abs_r[2][j];
        let rb = hb[j] << (2 * ANG_FRAC);
        let tp = t[0] * r[0][j] + t[1] * r[1][j] + t[2] * r[2][j];
        ops.mul += 6;
        ops.add += 5;
        ops.cmp += 1;
        if tp.abs() > (ra + rb) << ANG_FRAC {
            return false;
        }
    }

    // Axis class 3: cross products A_i × B_j.
    // ra, rb at frac 32; tp = t_v·r[u][j] − t_u·r[v][j] at frac 45.
    for i in 0..3 {
        let (u, v) = ((i + 1) % 3, (i + 2) % 3);
        for j in 0..3 {
            let (p, q) = ((j + 1) % 3, (j + 2) % 3);
            let ra = ha[u] * abs_r[v][j] + ha[v] * abs_r[u][j];
            let rb = hb[p] * abs_r[i][q] + hb[q] * abs_r[i][p];
            let tp = t[v] * r[u][j] - t[u] * r[v][j];
            ops.mul += 6;
            ops.add += 4;
            ops.cmp += 1;
            if tp.abs() > (ra + rb) << ANG_FRAC {
                return false;
            }
        }
    }
    true
}

/// Agreement statistics of the quantized datapath against the exact
/// double-precision kernel over a workload of box pairs.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AgreementReport {
    /// Pairs evaluated.
    pub total: u64,
    /// Pairs where both kernels agree.
    pub agree: u64,
    /// Quantized says intersect, exact says free (conservative).
    pub false_positive: u64,
    /// Quantized says free, exact says intersect (dangerous).
    pub false_negative: u64,
}

impl AgreementReport {
    /// Agreement fraction.
    pub fn agreement(&self) -> f64 {
        if self.total == 0 {
            1.0
        } else {
            self.agree as f64 / self.total as f64
        }
    }
}

/// Compares the quantized and exact kernels over the given pairs.
pub fn agreement(pairs: &[(Obb, Obb)]) -> AgreementReport {
    let mut rep = AgreementReport::default();
    let mut ops = OpCount::default();
    for (a, b) in pairs {
        rep.total += 1;
        let exact = moped_geometry::sat::obb_obb(a, b, &mut ops);
        let qa = QObb::from_obb(a);
        let qb = QObb::from_obb(b);
        let quant = obb_obb_q(&qa, &qb, &mut ops);
        match (quant, exact) {
            (x, y) if x == y => rep.agree += 1,
            (true, false) => rep.false_positive += 1,
            (false, true) => rep.false_negative += 1,
            _ => unreachable!(),
        }
    }
    rep
}

/// A motion collision checker that runs entirely on the quantized 16-bit
/// datapath: obstacles are held in their SRAM encoding ([`QObb`]) and
/// every robot body produced by forward kinematics is quantized before
/// the integer SAT — planning end-to-end exactly as the hardware would.
///
/// Like the hardware it models, this is an all-pairs checker (the R-tree
/// filter stage is modelled separately); its purpose is validating that
/// 16-bit planning produces equivalent plans, not peak software speed.
#[derive(Clone, Debug)]
pub struct QuantizedChecker {
    obstacles: Vec<QObb>,
    bodies: std::cell::RefCell<Vec<moped_geometry::Obb>>,
}

impl QuantizedChecker {
    /// Quantizes the obstacle field into its on-chip encoding.
    pub fn new(obstacles: &[moped_geometry::Obb]) -> Self {
        QuantizedChecker {
            obstacles: obstacles.iter().map(QObb::from_obb).collect(),
            bodies: std::cell::RefCell::new(Vec::new()),
        }
    }

    /// The quantized obstacle records.
    pub fn obstacles(&self) -> &[QObb] {
        &self.obstacles
    }
}

impl moped_collision::CollisionChecker for QuantizedChecker {
    fn config_free(
        &self,
        robot: &moped_robot::Robot,
        q: &moped_geometry::Config,
        ledger: &mut moped_collision::CollisionLedger,
    ) -> bool {
        let mut bodies = self.bodies.borrow_mut();
        robot.body_obbs_into(q, &mut bodies);
        for body in bodies.iter() {
            let qbody = QObb::from_obb(body);
            for obs in &self.obstacles {
                ledger.second_stage.mem_words += 15;
                if obb_obb_q(obs, &qbody, &mut ledger.second_stage) {
                    return false;
                }
            }
        }
        true
    }

    fn name(&self) -> &'static str {
        "quantized-16bit"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use moped_geometry::{Mat3, Vec3};

    fn box_at(x: f64, yaw: f64) -> Obb {
        Obb::new(
            Vec3::new(x, 20.0, 20.0),
            Vec3::new(3.0, 2.0, 1.5),
            Mat3::from_euler(yaw, 0.3, -0.2),
        )
    }

    #[test]
    fn clear_separation_and_clear_overlap() {
        let mut ops = OpCount::default();
        let a = QObb::from_obb(&box_at(10.0, 0.2));
        let far = QObb::from_obb(&box_at(40.0, 0.7));
        let near = QObb::from_obb(&box_at(12.0, 0.7));
        assert!(!obb_obb_q(&a, &far, &mut ops));
        assert!(obb_obb_q(&a, &near, &mut ops));
    }

    #[test]
    fn quantization_roundtrip_is_close() {
        let o = box_at(123.456, 1.234);
        let q = QObb::from_obb(&o).to_obb();
        assert!((q.center() - o.center()).norm() < 0.02);
        assert!((q.half_extents() - o.half_extents()).norm() < 0.02);
    }

    #[test]
    fn agreement_is_overwhelming_on_random_pairs() {
        let mut pairs = Vec::new();
        let mut state = 0x12345678u64;
        let mut rnd = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state % 10_000) as f64 / 10_000.0
        };
        for _ in 0..2000 {
            let a = Obb::new(
                Vec3::new(rnd() * 200.0, rnd() * 200.0, rnd() * 200.0),
                Vec3::new(1.0 + rnd() * 10.0, 1.0 + rnd() * 10.0, 1.0 + rnd() * 10.0),
                Mat3::from_euler(rnd() * 6.0 - 3.0, rnd() * 3.0 - 1.5, rnd() * 6.0 - 3.0),
            );
            let b = Obb::new(
                a.center()
                    + Vec3::new(
                        rnd() * 40.0 - 20.0,
                        rnd() * 40.0 - 20.0,
                        rnd() * 40.0 - 20.0,
                    ),
                Vec3::new(1.0 + rnd() * 10.0, 1.0 + rnd() * 10.0, 1.0 + rnd() * 10.0),
                Mat3::from_euler(rnd() * 6.0 - 3.0, rnd() * 3.0 - 1.5, rnd() * 6.0 - 3.0),
            );
            pairs.push((a, b));
        }
        let rep = agreement(&pairs);
        assert!(
            rep.agreement() > 0.995,
            "16-bit datapath must agree >99.5%: {rep:?}"
        );
        // Disagreements must be dominated by the conservative direction.
        assert!(
            rep.false_negative <= rep.false_positive.max(2),
            "dangerous disagreements must be rare: {rep:?}"
        );
    }

    #[test]
    fn symmetric_in_arguments() {
        let mut ops = OpCount::default();
        let a = QObb::from_obb(&box_at(10.0, 0.9));
        let b = QObb::from_obb(&box_at(13.0, -0.4));
        assert_eq!(obb_obb_q(&a, &b, &mut ops), obb_obb_q(&b, &a, &mut ops));
    }

    #[test]
    fn self_intersection_detected() {
        let mut ops = OpCount::default();
        let a = QObb::from_obb(&box_at(10.0, 0.5));
        assert!(obb_obb_q(&a, &a, &mut ops));
    }
}
