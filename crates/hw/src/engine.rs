//! One-call hardware evaluation of a planning workload.
//!
//! [`evaluate`] assembles the whole model stack — plan the task with the
//! baseline and full-MOPED variants, replay the MOPED trace through the
//! S&R pipeline, price energy, replay cache behaviour, and compare
//! against all three §V-B baselines — returning a single report a
//! downstream user (or the figures harness) can print.

use moped_core::{plan_variant, PlannerParams, Variant};
use moped_env::Scenario;

use crate::cache::{self, CacheConfig};
use crate::design::DesignPoint;
use crate::energy::{self, EnergyBreakdown};
use crate::perf::{self, Comparison, HwReport};
use crate::pipeline::{self, PipelineReport};

/// Complete hardware evaluation of one planning task.
#[derive(Clone, Debug)]
pub struct EngineReport {
    /// MOPED engine latency/energy/area.
    pub moped: HwReport,
    /// The S&R pipeline replay (serial vs speculative cycles, buffers).
    pub pipeline: PipelineReport,
    /// Per-phase energy attribution.
    pub energy: EnergyBreakdown,
    /// Unit-level cache model outcome.
    pub cache: cache::CacheReport,
    /// Comparison vs the CPU software baseline.
    pub vs_cpu: Comparison,
    /// Comparison vs the RRT\* ASIC baseline.
    pub vs_asic: Comparison,
    /// Comparison vs the RRT\* ASIC + CODAcc baseline.
    pub vs_codacc: Comparison,
    /// Whether both planners solved the task.
    pub solved: bool,
    /// MOPED / baseline algorithmic saving (MAC-equivalent ratio).
    pub algorithmic_saving: f64,
}

/// Runs the full evaluation of `scenario` at the given sampling budget.
///
/// Uses `Variant::V0Baseline` for the CPU/ASIC/CODAcc baselines and
/// `Variant::V4Lci` for the MOPED engine, both traced, on the same seed.
pub fn evaluate(scenario: &Scenario, params: &PlannerParams, design: &DesignPoint) -> EngineReport {
    let traced = PlannerParams {
        trace_rounds: true,
        ..params.clone()
    };
    let base = plan_variant(scenario, Variant::V0Baseline, &traced);
    let moped = plan_variant(scenario, Variant::V4Lci, &traced);

    let m = perf::moped_report(&moped.stats, design);
    let cpu = perf::cpu_report(&base.stats);
    let asic = perf::rrt_asic_report(&base.stats, design);
    let cod = perf::codacc_report(&base.stats, &scenario.robot, design);

    let rounds = pipeline::rounds_from_trace(&moped.stats.rounds);
    let pipe = pipeline::simulate(&rounds);

    // Cache model fed by depth-bucketed visit statistics approximated
    // from the trace volume (unit-level view; the trace-replay simulator
    // in `cachesim` offers the measured alternative).
    let mut stats = moped_simbr::SearchStats::default();
    let height = 4usize;
    let visits = moped.stats.rounds.len() as u64;
    stats.visits_by_depth = (0..height).map(|d| visits >> d).collect();
    stats.nodes_visited = stats.visits_by_depth.iter().sum();
    let cache = cache::apply(&stats, moped.stats.nodes as u64, &CacheConfig::default());

    EngineReport {
        moped: m,
        pipeline: pipe,
        energy: energy::breakdown(&moped.stats, design, 0.65),
        cache,
        vs_cpu: perf::compare(&m, &cpu),
        vs_asic: perf::compare(&m, &asic),
        vs_codacc: perf::compare(&m, &cod),
        solved: base.solved() && moped.solved(),
        algorithmic_saving: base.stats.total_ops().mac_equiv() as f64
            / moped.stats.total_ops().mac_equiv().max(1) as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use moped_env::ScenarioParams;
    use moped_robot::Robot;

    #[test]
    fn full_evaluation_is_coherent() {
        let s = Scenario::generate(Robot::drone_3d(), &ScenarioParams::with_obstacles(16), 44);
        let params = PlannerParams {
            max_samples: 250,
            seed: 1,
            ..PlannerParams::default()
        };
        let rep = evaluate(&s, &params, &DesignPoint::default());
        assert!(rep.moped.latency_s > 0.0);
        assert!(rep.pipeline.speedup() >= 1.0);
        assert!(rep.energy.total_j() > 0.0);
        assert!(rep.vs_cpu.speedup > rep.vs_asic.speedup);
        assert!(rep.algorithmic_saving > 1.5);
        assert!(rep.pipeline.max_fifo_occupancy <= crate::params::FIFO_DEPTH);
        assert!(rep.pipeline.max_missing_neighbors <= crate::params::MISSING_NEIGHBOR_CAPACITY);
    }

    #[test]
    fn evaluation_is_deterministic() {
        let s = Scenario::generate(Robot::mobile_2d(), &ScenarioParams::with_obstacles(8), 2);
        let params = PlannerParams {
            max_samples: 150,
            seed: 9,
            ..PlannerParams::default()
        };
        let a = evaluate(&s, &params, &DesignPoint::default());
        let b = evaluate(&s, &params, &DesignPoint::default());
        assert_eq!(a.moped.latency_s.to_bits(), b.moped.latency_s.to_bits());
        assert_eq!(a.pipeline, b.pipeline);
    }
}
