//! Per-phase energy breakdown of a planning run on the MOPED engine.
//!
//! The design-point power figure (§V-B) is an average; architects also
//! want to know *where* the joules go — which is what guided the paper's
//! cache hierarchy (memory traffic) and S&R unit (leakage × latency).
//! This module splits a traced run's energy by pipeline phase and by
//! compute/memory/leakage class.

use moped_core::PlanStats;

use crate::design::DesignPoint;
use crate::params;
use crate::pipeline;

/// Energy attribution for one planning run, in joules.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct EnergyBreakdown {
    /// Neighbor-search datapath energy.
    pub ns_j: f64,
    /// Extension collision-check datapath energy.
    pub cc_j: f64,
    /// Refinement (parent choice + rewiring) datapath energy.
    pub refine_j: f64,
    /// Tree-insertion datapath energy.
    pub insert_j: f64,
    /// SRAM/cache traffic energy.
    pub memory_j: f64,
    /// Leakage over the run's latency.
    pub leakage_j: f64,
}

impl EnergyBreakdown {
    /// Total energy.
    pub fn total_j(&self) -> f64 {
        self.ns_j + self.cc_j + self.refine_j + self.insert_j + self.memory_j + self.leakage_j
    }

    /// Fraction of the total attributable to the datapath phases
    /// `(ns, cc, refine, insert)`.
    pub fn datapath_shares(&self) -> (f64, f64, f64, f64) {
        let t = self.total_j().max(f64::MIN_POSITIVE);
        (
            self.ns_j / t,
            self.cc_j / t,
            self.refine_j / t,
            self.insert_j / t,
        )
    }
}

/// Computes the breakdown from a traced run.
///
/// Datapath energy is MAC work × per-MAC energy per phase (from the round
/// trace); memory energy prices the ledger's word traffic with the §IV-C
/// cache hierarchy serving `cache_fraction` of it; leakage integrates the
/// S&R-scheduled latency.
///
/// # Panics
///
/// Panics if `stats` has no round trace.
pub fn breakdown(stats: &PlanStats, design: &DesignPoint, cache_fraction: f64) -> EnergyBreakdown {
    assert!(
        !stats.rounds.is_empty(),
        "energy breakdown needs a per-round trace"
    );
    let mut ns = 0u64;
    let mut cc = 0u64;
    let mut refine = 0u64;
    let mut insert = 0u64;
    for r in &stats.rounds {
        ns += r.ns_macs;
        cc += r.cc_macs;
        refine += r.refine_macs;
        insert += r.insert_macs;
    }
    let e = params::MAC_ENERGY_J;
    let words = stats.total_ops().mem_words as f64;
    let memory_j = words * (1.0 - cache_fraction) * params::SRAM_WORD_ENERGY_J
        + words * cache_fraction * params::CACHE_WORD_ENERGY_J;
    let rounds = pipeline::rounds_from_trace(&stats.rounds);
    let latency_s = pipeline::simulate(&rounds).speculative_cycles as f64 / params::CLOCK_HZ;
    let _ = design; // the design point fixes the clock/leakage globals used above
    EnergyBreakdown {
        ns_j: ns as f64 * e,
        cc_j: cc as f64 * e,
        refine_j: refine as f64 * e,
        insert_j: insert as f64 * e,
        memory_j,
        leakage_j: params::LEAKAGE_W * latency_s,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use moped_core::{plan_variant, PlannerParams, Variant};
    use moped_env::{Scenario, ScenarioParams};
    use moped_robot::Robot;

    fn traced(robot: Robot, variant: Variant) -> PlanStats {
        let s = Scenario::generate(robot, &ScenarioParams::with_obstacles(16), 77);
        let p = PlannerParams {
            max_samples: 250,
            seed: 3,
            trace_rounds: true,
            ..PlannerParams::default()
        };
        plan_variant(&s, variant, &p).stats
    }

    #[test]
    fn components_are_positive_and_sum() {
        let stats = traced(Robot::drone_3d(), Variant::V4Lci);
        let b = breakdown(&stats, &DesignPoint::default(), 0.6);
        assert!(b.ns_j > 0.0 && b.cc_j > 0.0 && b.memory_j > 0.0 && b.leakage_j > 0.0);
        let (a, c, d, e) = b.datapath_shares();
        assert!(a + c + d + e < 1.0, "memory+leakage must take some share");
        assert!(b.total_j() > 0.0);
    }

    #[test]
    fn arm_workloads_are_collision_dominated() {
        let stats = traced(Robot::xarm7(), Variant::V0Baseline);
        let b = breakdown(&stats, &DesignPoint::default(), 0.0);
        assert!(
            b.cc_j + b.refine_j > b.ns_j,
            "baseline arm energy should be collision-heavy: {b:?}"
        );
    }

    #[test]
    fn caching_reduces_memory_energy() {
        let stats = traced(Robot::drone_3d(), Variant::V4Lci);
        let uncached = breakdown(&stats, &DesignPoint::default(), 0.0);
        let cached = breakdown(&stats, &DesignPoint::default(), 0.8);
        assert!(cached.memory_j < uncached.memory_j);
        assert_eq!(cached.ns_j, uncached.ns_j, "datapath unaffected by caching");
    }

    #[test]
    #[should_panic(expected = "trace")]
    fn untraced_stats_rejected() {
        let _ = breakdown(&PlanStats::default(), &DesignPoint::default(), 0.5);
    }
}
