//! The speculate-and-repair (S&R) pipeline model (§IV-B).
//!
//! RRT\*'s inter-sampling data dependency forces the neighbor search of
//! round *i+1* to wait for round *i*'s insertion in a serial design. The
//! S&R unit breaks that dependency: the NS unit starts the next round's
//! sampling + search speculatively against the not-yet-updated tree; once
//! the current round's collision check commits, a repair comparison
//! against the tiny Missing Neighbors Buffer restores the exact result.
//!
//! Two pieces live here:
//!
//! * [`simulate`] — a discrete-event replay of a planner round trace
//!   through the two-unit (NS / CC+refine) machine, reporting serial vs
//!   speculative latency and FIFO / MNB occupancy, and
//! * [`verify_equivalence`] — an algorithm-level re-execution that runs
//!   the speculative search against a one-round-stale SI-MBR tree, applies
//!   the repair rule, and checks the repaired nearest equals the serial
//!   planner's — the paper's functional-equivalence claim.

use moped_core::PlannerParams;
use moped_env::Scenario;
use moped_geometry::{Config, OpCount};
use moped_simbr::SiMbrTree;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::params;

/// Cycle cost of one planner round, per functional unit.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RoundCycles {
    /// Sampling + neighbor search (+ SI-MBR insertion) on the NS unit.
    pub ns: u64,
    /// Collision check + refinement on the checker units.
    pub cc: u64,
}

/// Converts a planner MAC trace into per-round unit cycles using the lane
/// allocation of [`params::lanes`].
pub fn rounds_from_trace(trace: &[moped_core::RoundTrace]) -> Vec<RoundCycles> {
    trace
        .iter()
        .map(|r| RoundCycles {
            ns: params::overhead::SAMPLE_CYCLES
                + div_ceil(r.ns_macs, params::lanes::NS as u64)
                + div_ceil(r.insert_macs, params::lanes::TREE_OP as u64),
            cc: div_ceil(r.cc_macs, params::lanes::CC as u64)
                + div_ceil(r.refine_macs, params::lanes::REFINE as u64),
        })
        .collect()
}

fn div_ceil(a: u64, b: u64) -> u64 {
    a.div_ceil(b)
}

/// Result of a pipeline replay.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct PipelineReport {
    /// End-to-end cycles with the strictly serial schedule.
    pub serial_cycles: u64,
    /// End-to-end cycles with speculate-and-repair overlap.
    pub speculative_cycles: u64,
    /// Maximum FIFO occupancy observed (must stay ≤ depth 20).
    pub max_fifo_occupancy: usize,
    /// Maximum Missing-Neighbors-Buffer occupancy observed (≤ 5).
    pub max_missing_neighbors: usize,
    /// Rounds whose speculative NS needed repair (informational).
    pub stall_cycles: u64,
}

impl PipelineReport {
    /// Latency reduction factor from S&R.
    pub fn speedup(&self) -> f64 {
        self.serial_cycles as f64 / self.speculative_cycles.max(1) as f64
    }
}

/// Replays the round trace through the serial and the S&R schedules.
///
/// Serial: `Σ (ns_i + cc_i)` — every phase waits for its predecessor.
///
/// S&R: the NS unit and CC unit run concurrently. NS of round *i+1* may
/// start as soon as the NS unit is free and the FIFO (which holds
/// NS results awaiting collision check) has space; CC of round *i* starts
/// once its NS result is available and the CC unit is free. Each round
/// additionally pays the small repair comparison on the NS unit.
///
/// The FIFO high-water mark and the number of collision-check completions
/// within one NS interval (the MNB occupancy) are tracked so the §IV-B
/// sizing claims (20-deep FIFO, 5-entry MNB) can be checked.
// Cycle-indexed loops mirror the pipeline diagram; enumerate() chains
// would hide which stage owns which cycle offset.
#[allow(clippy::needless_range_loop)]
pub fn simulate(rounds: &[RoundCycles]) -> PipelineReport {
    let mut report = PipelineReport {
        serial_cycles: rounds.iter().map(|r| r.ns + r.cc).sum(),
        ..PipelineReport::default()
    };
    if rounds.is_empty() {
        return report;
    }

    let cap = params::FIFO_DEPTH;
    let n = rounds.len();
    // Entry i occupies the FIFO from ns_end[i] (result produced) until
    // cc_start[i] (result consumed by the checker).
    let mut ns_end = vec![0u64; n];
    let mut cc_start = vec![0u64; n];
    let mut ns_free: u64 = 0;
    let mut cc_free: u64 = 0;

    for (i, r) in rounds.iter().enumerate() {
        // Backpressure: with `cap` results outstanding, the NS unit may
        // not start another round until the oldest enters the checker.
        let mut start = ns_free;
        if i >= cap {
            let gate = cc_start[i - cap];
            report.stall_cycles += gate.saturating_sub(start);
            start = start.max(gate);
        }
        let end = start + r.ns + params::overhead::REPAIR_CYCLES;
        ns_free = end;
        ns_end[i] = end;

        let cs = end.max(cc_free);
        cc_start[i] = cs;
        cc_free = cs + r.cc;
    }
    report.speculative_cycles = ns_free.max(cc_free);

    // FIFO high-water mark: when entry i is produced, how many earlier
    // entries (within the last `cap`) have not yet entered the checker.
    for i in 0..n {
        let lo = i.saturating_sub(cap);
        let pending = (lo..=i).filter(|&j| cc_start[j] > ns_end[i]).count() + 1;
        report.max_fifo_occupancy = report.max_fifo_occupancy.max(pending.min(cap));
    }

    // MNB high-water mark: collision-check commits landing inside one NS
    // interval (those nodes are invisible to that speculative search and
    // must sit in the Missing Neighbors Buffer for the repair step).
    let mut max_mnb = 0usize;
    let mut ns_lo = 0u64;
    let mut cursor = 0usize; // first cc completion not yet before ns_lo
    for i in 0..n {
        let hi = ns_end[i];
        while cursor < n && cc_start[cursor] + rounds[cursor].cc <= ns_lo {
            cursor += 1;
        }
        let mut count = 0usize;
        let mut j = cursor;
        while j < n {
            let done = cc_start[j] + rounds[j].cc;
            if done > hi {
                break;
            }
            count += 1;
            j += 1;
        }
        max_mnb = max_mnb.max(count);
        ns_lo = hi;
    }
    report.max_missing_neighbors = max_mnb;
    report
}

/// Statistics from the algorithm-level S&R equivalence run.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct EquivalenceReport {
    /// Rounds simulated.
    pub rounds: usize,
    /// Rounds where the speculative result was already correct.
    pub speculation_correct: usize,
    /// Rounds where the repair comparison fixed the result.
    pub repairs: usize,
    /// Maximum number of missing neighbors consulted in one repair.
    pub max_missing_considered: usize,
    /// Whether every repaired result matched the serial ground truth.
    pub equivalent: bool,
}

/// Re-executes the sampling/NS sequence of a planning run with the S&R
/// discipline at the algorithm level and checks functional equivalence.
///
/// Serial ground truth: nearest over the fully up-to-date SI-MBR tree.
/// Speculative: nearest over the tree *missing the last `lag` inserted
/// nodes* (in flight in the pipeline), then repaired by comparing against
/// those pending nodes — exactly the §IV-B rule. The two must agree on
/// every round.
pub fn verify_equivalence(
    scenario: &Scenario,
    params_: &PlannerParams,
    lag: usize,
) -> EquivalenceReport {
    let dof = scenario.robot.dof();
    let mut rng = StdRng::seed_from_u64(params_.seed);
    let mut tree = SiMbrTree::new(dof, 6);
    let mut ops = OpCount::default();
    let mut report = EquivalenceReport {
        equivalent: true,
        ..Default::default()
    };

    // Pending nodes: inserted into the "architectural" tree but not yet
    // visible to the speculative searcher.
    let mut pending: Vec<(u64, Config)> = Vec::new();
    let mut stale = tree.clone();

    tree.insert_conventional(0, scenario.start, &mut ops);
    stale.insert_conventional(0, scenario.start, &mut ops);
    let mut next_id = 1u64;
    let step = params_
        .steering_step
        .unwrap_or_else(|| scenario.robot.steering_step());

    for _ in 0..params_.max_samples {
        report.rounds += 1;
        let x_rand = if rng.gen::<f64>() < params_.goal_bias {
            scenario.goal
        } else {
            scenario.sample_any(&mut rng)
        };

        // Ground truth (serial machine).
        let (true_id, true_d) = tree.nearest(&x_rand, &mut ops).expect("non-empty");

        // Speculative search on the stale tree + repair from the MNB.
        let repair_span = moped_obs::span(moped_obs::Stage::SpecRepair);
        let (mut spec_id, mut spec_d) = stale.nearest(&x_rand, &mut ops).expect("non-empty");
        report.max_missing_considered = report.max_missing_considered.max(pending.len());
        let mut repaired = false;
        for (pid, pq) in &pending {
            let d = pq.distance(&x_rand);
            if d < spec_d {
                spec_d = d;
                spec_id = *pid;
                repaired = true;
            }
        }
        if repaired {
            report.repairs += 1;
        } else {
            report.speculation_correct += 1;
        }
        if spec_id != true_id && (spec_d - true_d).abs() > 1e-12 {
            report.equivalent = false;
        }
        drop(repair_span);

        // Commit: steer, "collision check always passes" abstraction
        // (collision rejections only shrink the MNB, so accepting every
        // sample is the adversarial worst case for equivalence).
        let _commit_span = moped_obs::span(moped_obs::Stage::SpecCommit);
        let anchor_q = tree
            .iter()
            .find(|e| e.id == true_id)
            .map(|e| e.point)
            .expect("anchor exists");
        let x_new = anchor_q.steer_toward(&x_rand, step);
        if x_new == anchor_q {
            continue;
        }
        tree.insert_near(next_id, x_new, true_id, &mut ops);
        pending.push((next_id, x_new));
        next_id += 1;

        // The pipeline drains: insertions older than `lag` rounds become
        // visible to the speculative searcher.
        while pending.len() > lag {
            let (pid, pq) = pending.remove(0);
            // The stale tree anchors on the nearest visible entry (the
            // hardware inserts with the anchor recorded at commit time;
            // nearest-visible is equivalent for structure soundness).
            let (vis_anchor, _) = stale.nearest(&pq, &mut ops).expect("non-empty");
            stale.insert_near(pid, pq, vis_anchor, &mut ops);
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use moped_env::ScenarioParams;
    use moped_robot::Robot;

    fn uniform_rounds(n: usize, ns: u64, cc: u64) -> Vec<RoundCycles> {
        vec![RoundCycles { ns, cc }; n]
    }

    #[test]
    fn empty_trace_is_zero() {
        let r = simulate(&[]);
        assert_eq!(r.serial_cycles, 0);
        assert_eq!(r.speculative_cycles, 0);
    }

    #[test]
    fn balanced_stages_give_near_2x() {
        // When NS and CC cost the same, overlapping them should approach
        // 2x (§IV-B's reported ~2x on the 2D mobile workload).
        let rounds = uniform_rounds(5000, 200, 200);
        let r = simulate(&rounds);
        assert!(
            r.speedup() > 1.7 && r.speedup() <= 2.0,
            "expected ~2x, got {:.2} (serial {}, spec {})",
            r.speedup(),
            r.serial_cycles,
            r.speculative_cycles
        );
    }

    #[test]
    fn imbalanced_stages_limit_speedup() {
        // Speedup is bounded by (ns+cc)/max(ns,cc).
        let rounds = uniform_rounds(2000, 100, 400);
        let r = simulate(&rounds);
        let bound = (100.0 + 400.0) / 400.0;
        assert!(r.speedup() <= bound + 0.05);
        assert!(r.speedup() > bound * 0.85);
    }

    #[test]
    fn speculative_never_slower_than_serial_minus_overhead() {
        let rounds = uniform_rounds(100, 50, 10);
        let r = simulate(&rounds);
        // Repair overhead is small relative to stage work.
        assert!(r.speculative_cycles <= r.serial_cycles + 100 * params::overhead::REPAIR_CYCLES);
    }

    #[test]
    fn fifo_occupancy_stays_within_depth() {
        // Even with CC much slower than NS, backpressure keeps occupancy
        // below the architected depth.
        let rounds = uniform_rounds(1000, 10, 500);
        let r = simulate(&rounds);
        assert!(r.max_fifo_occupancy <= params::FIFO_DEPTH);
    }

    #[test]
    fn mnb_occupancy_within_capacity() {
        let rounds = uniform_rounds(1000, 300, 100);
        let r = simulate(&rounds);
        assert!(r.max_missing_neighbors <= params::MISSING_NEIGHBOR_CAPACITY);
    }

    #[test]
    fn rounds_from_trace_charges_all_phases() {
        let trace = vec![moped_core::RoundTrace {
            ns_macs: 480,
            cc_macs: 640,
            refine_macs: 400,
            insert_macs: 160,
            accepted: true,
            near_count: 4,
        }];
        let rounds = rounds_from_trace(&trace);
        assert_eq!(rounds.len(), 1);
        assert_eq!(
            rounds[0].ns,
            params::overhead::SAMPLE_CYCLES + 480 / 48 + 160 / 16
        );
        assert_eq!(rounds[0].cc, 640 / 64 + 400 / 40);
    }

    #[test]
    fn equivalence_holds_across_lags_and_models() {
        for robot in [Robot::mobile_2d(), Robot::drone_3d()] {
            let s = Scenario::generate(robot, &ScenarioParams::with_obstacles(8), 77);
            for lag in [1usize, 2, 5] {
                let p = PlannerParams {
                    max_samples: 250,
                    seed: 11,
                    ..PlannerParams::default()
                };
                let rep = verify_equivalence(&s, &p, lag);
                assert!(
                    rep.equivalent,
                    "{} lag {lag}: speculation+repair diverged from serial",
                    s.robot.name()
                );
                assert!(rep.rounds > 0);
                assert!(rep.max_missing_considered <= lag);
            }
        }
    }

    #[test]
    fn repairs_actually_occur() {
        // With steering pulling new nodes toward random targets, the
        // just-inserted node is regularly the true nearest — the repair
        // path must trigger.
        let s = Scenario::generate(Robot::mobile_2d(), &ScenarioParams::with_obstacles(8), 5);
        let p = PlannerParams {
            max_samples: 300,
            seed: 3,
            ..PlannerParams::default()
        };
        let rep = verify_equivalence(&s, &p, 1);
        assert!(rep.repairs > 0, "expected some repaired rounds: {rep:?}");
        assert!(rep.speculation_correct > 0);
    }
}
