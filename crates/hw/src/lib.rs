//! Hardware performance model of the MOPED accelerator.
//!
//! The paper evaluates a synthesized 28nm ASIC (168 16-bit MACs, 198 KB of
//! on-chip SRAM, 0.62 mm², 137.5 mW @ 1 GHz). Synthesis tooling is not
//! available here, so this crate substitutes an **analytical + discrete-
//! event model** fed by the *actual counted work* of the algorithm crates:
//!
//! * [`params`] — documented 28nm energy/area/timing constants (the
//!   swappable knobs; every evaluation number is a ratio between designs
//!   running the same counted workload, so shapes survive knob changes).
//! * [`lfsr`] — the Galois LFSR random samplers the hardware uses.
//! * [`fixed`] — 16-bit fixed-point quantization (the on-chip number
//!   format), with validation helpers.
//! * [`pipeline`] — the speculate-and-repair (S&R) two-unit pipeline
//!   simulator: replays a planner's per-round trace, reports serial vs
//!   speculative latency, FIFO / Missing-Neighbors-Buffer occupancy, and
//!   verifies the §IV-B functional-equivalence claim.
//! * [`cache`] — the three-level caching model (unit / module / engine).
//! * [`design`] — the design-point roll-up (area, power, SRAM budget).
//! * [`perf`] — end-to-end latency/energy reports for MOPED and the three
//!   baselines (CPU, RRT\* ASIC, RRT\* ASIC + CODAcc).
//!
//! # Example
//!
//! ```
//! use moped_hw::design::DesignPoint;
//! let d = DesignPoint::default();
//! assert!((d.area_mm2() - 0.62).abs() < 0.1);
//! ```

#![deny(missing_docs)]

pub mod banks;
pub mod cache;
pub mod cachesim;
pub mod design;
pub mod energy;
pub mod engine;
pub mod fixed;
pub mod lfsr;
pub mod params;
pub mod perf;
pub mod pipeline;
pub mod satq;
