//! Linear-feedback shift registers — the hardware random samplers.
//!
//! MOPED's Tree Extension Module samples the configuration space with a
//! group of LFSRs (Fig 11), one per degree of freedom. This module
//! implements a maximal-period 16-bit Galois LFSR and the multi-channel
//! configuration sampler built from it.

use moped_geometry::Config;
use moped_robot::Robot;

/// Taps for a maximal-length 16-bit Galois LFSR (x^16 + x^14 + x^13 +
/// x^11 + 1), period 2^16 − 1.
const TAPS16: u16 = 0xB400;

/// A 16-bit Galois LFSR.
///
/// # Example
///
/// ```
/// use moped_hw::lfsr::Lfsr16;
/// let mut l = Lfsr16::new(0xACE1);
/// let a = l.next_u16();
/// let b = l.next_u16();
/// assert_ne!(a, b);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Lfsr16 {
    state: u16,
}

impl Lfsr16 {
    /// Creates an LFSR with the given non-zero seed (a zero seed is
    /// remapped to a fixed non-zero constant, since the all-zero state is
    /// a fixed point of the recurrence).
    pub fn new(seed: u16) -> Self {
        Lfsr16 {
            state: if seed == 0 { 0xACE1 } else { seed },
        }
    }

    /// Advances one step and returns the new state.
    #[inline]
    pub fn next_u16(&mut self) -> u16 {
        let lsb = self.state & 1;
        self.state >>= 1;
        if lsb != 0 {
            self.state ^= TAPS16;
        }
        self.state
    }

    /// Current state without advancing.
    pub fn state(&self) -> u16 {
        self.state
    }

    /// A uniform draw in `[0, 1)` (16-bit resolution).
    #[inline]
    pub fn next_unit(&mut self) -> f64 {
        f64::from(self.next_u16()) / 65536.0
    }
}

/// A bank of per-axis LFSRs sampling a robot's configuration space — the
/// hardware-faithful replacement for a software RNG.
#[derive(Clone, Debug)]
pub struct ConfigSampler {
    channels: Vec<Lfsr16>,
}

impl ConfigSampler {
    /// One LFSR per degree of freedom, seeded distinctly from `seed`.
    pub fn new(dof: usize, seed: u16) -> Self {
        let channels = (0..dof)
            .map(|i| Lfsr16::new(seed.wrapping_add((i as u16).wrapping_mul(0x9E37)).max(1)))
            .collect();
        ConfigSampler { channels }
    }

    /// Draws a configuration within the robot's bounds.
    ///
    /// # Panics
    ///
    /// Panics if the sampler's channel count differs from the robot's DoF.
    pub fn sample(&mut self, robot: &Robot) -> Config {
        assert_eq!(
            self.channels.len(),
            robot.dof(),
            "sampler/robot DoF mismatch"
        );
        let unit: Vec<f64> = self.channels.iter_mut().map(Lfsr16::next_unit).collect();
        robot.config_from_unit(&unit)
    }

    /// Number of channels (== robot DoF).
    pub fn channels(&self) -> usize {
        self.channels.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_seed_is_remapped() {
        let mut l = Lfsr16::new(0);
        assert_ne!(l.state(), 0);
        assert_ne!(l.next_u16(), 0);
    }

    #[test]
    fn never_reaches_zero_state() {
        let mut l = Lfsr16::new(1);
        for _ in 0..70_000 {
            assert_ne!(l.next_u16(), 0);
        }
    }

    #[test]
    fn period_is_maximal() {
        let mut l = Lfsr16::new(0xACE1);
        let start = l.state();
        let mut period = 0u32;
        loop {
            l.next_u16();
            period += 1;
            if l.state() == start {
                break;
            }
            assert!(period <= 65535, "period exceeded 2^16-1");
        }
        assert_eq!(period, 65535, "taps must give a maximal-length sequence");
    }

    #[test]
    fn unit_draws_are_roughly_uniform() {
        let mut l = Lfsr16::new(0xBEEF);
        let n = 20_000;
        let mut buckets = [0u32; 8];
        for _ in 0..n {
            let u = l.next_unit();
            assert!((0.0..1.0).contains(&u));
            buckets[(u * 8.0) as usize] += 1;
        }
        let expect = n as f64 / 8.0;
        for b in buckets {
            assert!(
                (f64::from(b) - expect).abs() < expect * 0.15,
                "bucket {b} deviates from {expect}"
            );
        }
    }

    #[test]
    fn config_sampler_stays_in_bounds() {
        let robot = Robot::xarm7();
        let mut s = ConfigSampler::new(robot.dof(), 0x1234);
        for _ in 0..500 {
            let q = s.sample(&robot);
            assert!(robot.in_bounds(&q));
        }
    }

    #[test]
    fn channels_decorrelate() {
        let robot = Robot::drone_3d();
        let mut s = ConfigSampler::new(robot.dof(), 7);
        let q = s.sample(&robot);
        // All six axes should not be identical fractions of their ranges.
        let fracs: Vec<f64> = q
            .as_slice()
            .iter()
            .zip(robot.config_bounds())
            .map(|(v, (lo, hi))| (v - lo) / (hi - lo))
            .collect();
        let first = fracs[0];
        assert!(fracs.iter().any(|f| (f - first).abs() > 1e-6));
    }

    #[test]
    #[should_panic(expected = "DoF mismatch")]
    fn sampler_robot_mismatch_rejected() {
        let robot = Robot::mobile_2d();
        let mut s = ConfigSampler::new(5, 1);
        let _ = s.sample(&robot);
    }
}
