//! End-to-end performance reports: MOPED vs the three §V-B baselines.
//!
//! Given the counted workload of a planning run (from `moped-core`), this
//! module produces latency / energy / area-efficiency figures for:
//!
//! * **MOPED** — round trace replayed through the S&R pipeline at 1 GHz
//!   on the 168-MAC design point, with the multi-level cache hierarchy.
//! * **CPU** — the baseline (V0) algorithm on an EPYC-class core: counted
//!   ops expanded by the instructions-per-op factor at the modelled IPC.
//! * **RRT\* ASIC** — the baseline algorithm on MOPED's compute/memory
//!   budget, with extension/refinement overlap but no S&R, no two-stage
//!   collision filtering, and linear neighbor search (\[78\]-style).
//! * **RRT\* ASIC + CODAcc** — the same ASIC with collision checks served
//!   by four occupancy-grid accelerator instances (\[4\]); neighbor search
//!   remains the bottleneck it cannot address.

use moped_core::{PlanStats, RoundTrace};
use moped_robot::Robot;

use crate::design::DesignPoint;
use crate::params;
use crate::pipeline::{self, RoundCycles};

/// A latency/energy/area report for one design running one workload.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct HwReport {
    /// End-to-end planning latency (seconds).
    pub latency_s: f64,
    /// Energy consumed over the run (joules).
    pub energy_j: f64,
    /// Silicon area attributed to the design (mm²); CPU reports die-class
    /// area and is only used for speedup/energy ratios.
    pub area_mm2: f64,
}

impl HwReport {
    /// Planning throughput (tasks per second for this workload).
    pub fn throughput(&self) -> f64 {
        1.0 / self.latency_s
    }

    /// Energy efficiency (tasks per joule).
    pub fn energy_efficiency(&self) -> f64 {
        1.0 / self.energy_j
    }

    /// Area efficiency (throughput per mm²).
    pub fn area_efficiency(&self) -> f64 {
        self.throughput() / self.area_mm2
    }
}

/// Relative comparison of MOPED against one baseline.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Comparison {
    /// Latency ratio (baseline / MOPED).
    pub speedup: f64,
    /// Energy-efficiency ratio (MOPED / baseline).
    pub energy_efficiency_gain: f64,
    /// Area-efficiency ratio (MOPED / baseline).
    pub area_efficiency_gain: f64,
}

/// Computes the comparison ratios of `moped` against `baseline`.
pub fn compare(moped: &HwReport, baseline: &HwReport) -> Comparison {
    Comparison {
        speedup: baseline.latency_s / moped.latency_s,
        energy_efficiency_gain: moped.energy_efficiency() / baseline.energy_efficiency(),
        area_efficiency_gain: moped.area_efficiency() / baseline.area_efficiency(),
    }
}

/// MOPED engine report: replays the per-round trace through the S&R
/// pipeline and charges the energy model.
///
/// # Panics
///
/// Panics if the stats carry no round trace (`trace_rounds` must be set
/// when planning for hardware evaluation).
pub fn moped_report(stats: &PlanStats, design: &DesignPoint) -> HwReport {
    assert!(
        !stats.rounds.is_empty(),
        "hardware evaluation needs a per-round trace (set trace_rounds)"
    );
    let rounds = pipeline::rounds_from_trace(&stats.rounds);
    let pipe = pipeline::simulate(&rounds);
    let latency_s = pipe.speculative_cycles as f64 / params::CLOCK_HZ;
    // Engine energy: the design point's average power over the run (the
    // 137.5 mW figure already folds in datapath activity, the cached
    // memory hierarchy, and leakage).
    let energy_j = design.power_w() * latency_s;
    HwReport {
        latency_s,
        energy_j,
        area_mm2: design.area_mm2(),
    }
}

/// MOPED without S&R (the ablation Fig 17 normalizes against): identical
/// arithmetic, strictly serial schedule.
pub fn moped_serial_report(stats: &PlanStats, design: &DesignPoint) -> HwReport {
    assert!(!stats.rounds.is_empty(), "needs a per-round trace");
    let rounds = pipeline::rounds_from_trace(&stats.rounds);
    let pipe = pipeline::simulate(&rounds);
    let latency_s = pipe.serial_cycles as f64 / params::CLOCK_HZ;
    let energy_j = design.power_w() * latency_s;
    HwReport {
        latency_s,
        energy_j,
        area_mm2: design.area_mm2(),
    }
}

/// CPU baseline: the V0 workload executed as scalar instructions, with
/// core-level energy charged per retired instruction.
pub fn cpu_report(baseline_stats: &PlanStats) -> HwReport {
    let ops = baseline_stats.total_ops().mac_equiv() as f64;
    let instructions = ops * params::cpu::INSTRUCTIONS_PER_OP;
    let latency_s = instructions / params::cpu::EFFECTIVE_IPC / params::cpu::CLOCK_HZ;
    HwReport {
        latency_s,
        energy_j: instructions * params::cpu::ENERGY_PER_INSTRUCTION_J,
        // EPYC 7601 die ≈ 4×213 mm²; a single-core share is what a fair
        // area-efficiency ratio would use, but the paper reports only
        // speedup/energy for the CPU, so the whole-package area is kept
        // for reference.
        area_mm2: 852.0,
    }
}

/// RRT\* ASIC baseline (\[78\]-style): the baseline algorithm's counted
/// work on MOPED's MAC budget. Tree extension and refinement overlap
/// (two modules), but rounds serialize on the NS→CC dependency and there
/// is no collision filtering or NS indexing — the V0 per-round trace is
/// replayed with extension and refinement as the two overlapped units.
pub fn rrt_asic_report(baseline_stats: &PlanStats, design: &DesignPoint) -> HwReport {
    assert!(!baseline_stats.rounds.is_empty(), "needs a per-round trace");
    let mut total: u64 = 0;
    let mut prev_refine: u64 = 0;
    for r in &baseline_stats.rounds {
        // Extension work (sampling + NS + CC) runs serially; the previous
        // round's refinement overlaps with it on the second module.
        let ext = params::overhead::SAMPLE_CYCLES
            + r.ns_macs.div_ceil(params::lanes::NS as u64)
            + r.cc_macs.div_ceil(params::lanes::CC as u64)
            + r.insert_macs.div_ceil(params::lanes::TREE_OP as u64);
        let refine = r.refine_macs.div_ceil(params::lanes::REFINE as u64);
        total += ext.max(prev_refine);
        prev_refine = refine;
    }
    total += prev_refine;
    let latency_s = total as f64 / params::CLOCK_HZ;
    // Same silicon budget, no cache hierarchy: charge a modestly higher
    // average power (uncached SRAM traffic) than the MOPED design point.
    let energy_j = design.power_w() * 1.1 * latency_s;
    HwReport {
        latency_s,
        energy_j,
        area_mm2: design.area_mm2(),
    }
}

/// RRT\* ASIC + CODAcc (\[4\]): collision checking is served by four
/// occupancy-grid units (cost proportional to the robot-body cell volume
/// per checked pose); neighbor search and refinement arithmetic are
/// unchanged from the RRT\* ASIC.
pub fn codacc_report(baseline_stats: &PlanStats, robot: &Robot, design: &DesignPoint) -> HwReport {
    assert!(!baseline_stats.rounds.is_empty(), "needs a per-round trace");
    // Cells a single pose check must visit: the body AABB volume at grid
    // resolution, summed over bodies.
    let cells_per_pose: f64 = robot
        .body_obbs(&neutral_config(robot))
        .iter()
        .map(|b| {
            let h = b.half_extents();
            let scale = params::codacc::CELL_PER_UNIT;
            if b.is_planar() {
                (2.0 * h.x * scale) * (2.0 * h.y * scale)
            } else {
                (2.0 * h.x * scale) * (2.0 * h.y * scale) * (2.0 * h.z * scale)
            }
        })
        .sum();
    let cell_rate = params::codacc::UNITS as f64 * params::codacc::CELLS_PER_CYCLE_PER_UNIT;
    let poses = baseline_stats.collision.pose_queries as f64;
    let cc_cycles_total = poses * cells_per_pose / cell_rate;
    // Distribute grid-check cycles across rounds proportional to each
    // round's share of baseline CC work.
    let cc_total_macs: u64 = baseline_stats.rounds.iter().map(|r| r.cc_macs).sum();
    let mut total: u64 = 0;
    let mut prev_refine: u64 = 0;
    for r in &baseline_stats.rounds {
        let share = if cc_total_macs == 0 {
            0.0
        } else {
            r.cc_macs as f64 / cc_total_macs as f64
        };
        let cc = (cc_cycles_total * share).ceil() as u64;
        let ext = params::overhead::SAMPLE_CYCLES
            + r.ns_macs.div_ceil(params::lanes::NS as u64)
            + cc
            + r.insert_macs.div_ceil(params::lanes::TREE_OP as u64);
        // Refinement collision checks also go through the grid units;
        // approximate their share with the refine MAC ratio.
        let refine = r.refine_macs.div_ceil(params::lanes::REFINE as u64);
        total += ext.max(prev_refine);
        prev_refine = refine;
    }
    total += prev_refine;
    let latency_s = total as f64 / params::CLOCK_HZ;
    let grid_energy = poses * cells_per_pose * params::codacc::CELL_ENERGY_J;
    // Host datapath at the uncached-ASIC power, plus grid traffic.
    let energy_j = design.power_w() * 1.1 * latency_s + grid_energy;
    HwReport {
        latency_s,
        energy_j,
        area_mm2: design.area_mm2() + params::codacc::EXTRA_AREA_MM2,
    }
}

fn neutral_config(robot: &Robot) -> moped_geometry::Config {
    robot.config_from_unit(&vec![0.5; robot.dof()])
}

/// Convenience: a synthetic uniform round trace (for tests and quick
/// what-if sweeps without running a planner).
pub fn synthetic_trace(
    rounds: usize,
    ns: u64,
    cc: u64,
    refine: u64,
    insert: u64,
) -> Vec<RoundTrace> {
    vec![
        RoundTrace {
            ns_macs: ns,
            cc_macs: cc,
            refine_macs: refine,
            insert_macs: insert,
            accepted: true,
            near_count: 4,
        };
        rounds
    ]
}

/// Converts a synthetic trace into pipeline rounds (re-exported shortcut
/// for benches).
pub fn cycles_of(trace: &[RoundTrace]) -> Vec<RoundCycles> {
    pipeline::rounds_from_trace(trace)
}

#[cfg(test)]
mod tests {
    use super::*;
    use moped_core::{plan_variant, PlannerParams, Variant};
    use moped_env::{Scenario, ScenarioParams};

    fn traced_params(samples: usize, seed: u64) -> PlannerParams {
        PlannerParams {
            max_samples: samples,
            seed,
            trace_rounds: true,
            ..PlannerParams::default()
        }
    }

    fn workload() -> (Scenario, PlanStats, PlanStats) {
        let s = Scenario::generate(Robot::drone_3d(), &ScenarioParams::with_obstacles(16), 31);
        let base = plan_variant(&s, Variant::V0Baseline, &traced_params(250, 9)).stats;
        let moped = plan_variant(&s, Variant::V4Lci, &traced_params(250, 9)).stats;
        (s, base, moped)
    }

    #[test]
    fn moped_beats_all_baselines() {
        let (s, base, moped) = workload();
        let design = DesignPoint::default();
        let m = moped_report(&moped, &design);
        let cpu = cpu_report(&base);
        let asic = rrt_asic_report(&base, &design);
        let cod = codacc_report(&base, &s.robot, &design);

        let vs_cpu = compare(&m, &cpu);
        let vs_asic = compare(&m, &asic);
        let vs_cod = compare(&m, &cod);

        assert!(
            vs_cpu.speedup > 100.0,
            "CPU speedup too small: {:.1}",
            vs_cpu.speedup
        );
        assert!(
            vs_asic.speedup > 1.5,
            "ASIC speedup too small: {:.2}",
            vs_asic.speedup
        );
        assert!(
            vs_cod.speedup > 1.0,
            "CODAcc speedup too small: {:.2}",
            vs_cod.speedup
        );
        assert!(vs_cpu.energy_efficiency_gain > 100.0);
        assert!(vs_asic.energy_efficiency_gain > 1.0);
    }

    #[test]
    fn latency_is_sub_millisecond_scale() {
        // The paper reports 0.35–0.96 ms at 5000 samples; at 250 samples
        // the engine should be well under a millisecond.
        let (_, _, moped) = workload();
        let m = moped_report(&moped, &DesignPoint::default());
        assert!(m.latency_s < 1e-3, "latency {:.2e}s", m.latency_s);
        assert!(m.latency_s > 1e-7);
    }

    #[test]
    fn sr_speedup_is_within_theoretical_band() {
        let (_, _, moped) = workload();
        let design = DesignPoint::default();
        let spec = moped_report(&moped, &design);
        let serial = moped_serial_report(&moped, &design);
        let speedup = serial.latency_s / spec.latency_s;
        assert!(
            speedup > 1.05 && speedup <= 2.0,
            "S&R speedup {speedup:.2} outside (1, 2]"
        );
    }

    #[test]
    fn report_efficiencies_are_consistent() {
        let r = HwReport {
            latency_s: 0.5e-3,
            energy_j: 70e-6,
            area_mm2: 0.62,
        };
        assert!((r.throughput() - 2000.0).abs() < 1e-6);
        assert!((r.energy_efficiency() - 1.0 / 70e-6).abs() < 1.0);
        assert!((r.area_efficiency() - 2000.0 / 0.62).abs() < 1e-6);
    }

    #[test]
    fn synthetic_trace_roundtrips_through_pipeline() {
        let trace = synthetic_trace(100, 480, 640, 200, 64);
        let rounds = cycles_of(&trace);
        let rep = pipeline::simulate(&rounds);
        assert!(rep.speedup() > 1.0);
        assert_eq!(rounds.len(), 100);
    }

    #[test]
    #[should_panic(expected = "trace")]
    fn missing_trace_is_rejected() {
        let stats = PlanStats::default();
        let _ = moped_report(&stats, &DesignPoint::default());
    }
}
