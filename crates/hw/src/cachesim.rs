//! Trace-driven cache simulation for the NS memory hierarchy (§IV-C).
//!
//! The analytic model in [`crate::cache`] classifies accesses by depth;
//! this module goes further and *replays actual node-access traces* from
//! [`moped_simbr::SiMbrTree::nearest_traced`] through a configurable
//! set-associative LRU cache — the Top NS Cache structure — reporting
//! measured hit rates and energy. This is how the unit-level caching
//! claim ("the top part of the tree is always accessed more frequently")
//! is validated rather than assumed.

use std::collections::VecDeque;

use crate::params;

/// A set-associative LRU cache over node identifiers.
///
/// # Example
///
/// ```
/// use moped_hw::cachesim::LruCache;
/// let mut c = LruCache::new(4, 2);
/// assert!(!c.access(7)); // cold miss
/// assert!(c.access(7));  // hit
/// ```
#[derive(Clone, Debug)]
pub struct LruCache {
    sets: Vec<VecDeque<usize>>,
    ways: usize,
    hits: u64,
    misses: u64,
}

impl LruCache {
    /// Creates a cache with `sets` sets of `ways` ways (capacity =
    /// `sets * ways` node records).
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(sets: usize, ways: usize) -> Self {
        assert!(sets > 0 && ways > 0, "cache dimensions must be positive");
        LruCache {
            sets: vec![VecDeque::new(); sets],
            ways,
            hits: 0,
            misses: 0,
        }
    }

    /// Total capacity in node records.
    pub fn capacity(&self) -> usize {
        self.sets.len() * self.ways
    }

    /// Accesses node `id`; returns `true` on a hit. Misses allocate with
    /// LRU replacement.
    pub fn access(&mut self, id: usize) -> bool {
        let set = id % self.sets.len();
        let q = &mut self.sets[set];
        if let Some(pos) = q.iter().position(|&x| x == id) {
            // Move to MRU position.
            q.remove(pos);
            q.push_back(id);
            self.hits += 1;
            true
        } else {
            if q.len() == self.ways {
                q.pop_front();
            }
            q.push_back(id);
            self.misses += 1;
            false
        }
    }

    /// Hits so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Misses so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Hit fraction (0 when no accesses).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Clears contents and counters.
    pub fn reset(&mut self) {
        for s in &mut self.sets {
            s.clear();
        }
        self.hits = 0;
        self.misses = 0;
    }
}

/// Result of replaying an access trace through the Top NS Cache model.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ReplayReport {
    /// Node accesses replayed.
    pub accesses: u64,
    /// Cache hits.
    pub hits: u64,
    /// Measured hit rate.
    pub hit_rate: f64,
    /// Memory energy without the cache (all SRAM), joules.
    pub energy_uncached_j: f64,
    /// Memory energy with the cache, joules.
    pub energy_cached_j: f64,
}

impl ReplayReport {
    /// Energy-reduction factor delivered by the cache.
    pub fn energy_saving(&self) -> f64 {
        if self.energy_cached_j <= 0.0 {
            1.0
        } else {
            self.energy_uncached_j / self.energy_cached_j
        }
    }
}

/// Replays `trace` (ordered node ids from SI-MBR searches) through a Top
/// NS Cache of the given geometry; `words_per_node` prices each access.
pub fn replay(trace: &[usize], sets: usize, ways: usize, words_per_node: u64) -> ReplayReport {
    let mut cache = LruCache::new(sets, ways);
    for &id in trace {
        cache.access(id);
    }
    let accesses = trace.len() as u64;
    let words = accesses * words_per_node;
    let hit_words = cache.hits() * words_per_node;
    let miss_words = cache.misses() * words_per_node;
    ReplayReport {
        accesses,
        hits: cache.hits(),
        hit_rate: cache.hit_rate(),
        energy_uncached_j: words as f64 * params::SRAM_WORD_ENERGY_J,
        energy_cached_j: hit_words as f64 * params::CACHE_WORD_ENERGY_J
            + miss_words as f64 * (params::SRAM_WORD_ENERGY_J + params::CACHE_WORD_ENERGY_J),
    }
}

/// Replays `trace` through an idealized *pinned-prefix* cache: node ids
/// below `pinned_len` always hit, everything else always misses. This is
/// the hardware model of the software engine's pinned top-of-tree block —
/// [`moped_simbr::SiMbrTree`] repacks the top levels into the arena
/// prefix `0..top_block_len()`, so prefix membership *is* residency. The
/// software engine counts the same classification per search
/// ([`moped_simbr::CacheStats`]); the cross-check test in this module
/// asserts the two bookkeepings agree access-for-access.
pub fn replay_pinned(trace: &[usize], pinned_len: usize, words_per_node: u64) -> ReplayReport {
    let accesses = trace.len() as u64;
    let hits = trace.iter().filter(|&&id| id < pinned_len).count() as u64;
    let misses = accesses - hits;
    let words = accesses * words_per_node;
    let hit_words = hits * words_per_node;
    let miss_words = misses * words_per_node;
    ReplayReport {
        accesses,
        hits,
        hit_rate: if accesses == 0 {
            0.0
        } else {
            hits as f64 / accesses as f64
        },
        energy_uncached_j: words as f64 * params::SRAM_WORD_ENERGY_J,
        energy_cached_j: hit_words as f64 * params::CACHE_WORD_ENERGY_J
            + miss_words as f64 * (params::SRAM_WORD_ENERGY_J + params::CACHE_WORD_ENERGY_J),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use moped_geometry::{Config, OpCount};
    use moped_simbr::{SearchStats, SiMbrTree};

    #[test]
    fn repeated_access_hits() {
        let mut c = LruCache::new(8, 2);
        assert!(!c.access(3));
        assert!(c.access(3));
        assert!(c.access(3));
        assert_eq!(c.hits(), 2);
        assert_eq!(c.misses(), 1);
    }

    #[test]
    fn lru_evicts_oldest_way() {
        let mut c = LruCache::new(1, 2);
        c.access(0);
        c.access(1);
        c.access(0); // 0 becomes MRU
        assert!(!c.access(2)); // evicts 1
        assert!(c.access(0), "0 must have survived");
        assert!(!c.access(1), "1 must have been evicted");
    }

    #[test]
    fn reset_clears_state() {
        let mut c = LruCache::new(2, 2);
        c.access(1);
        c.reset();
        assert_eq!(c.hits() + c.misses(), 0);
        assert!(!c.access(1));
    }

    #[test]
    fn replay_saves_energy_on_root_heavy_traces() {
        // Synthetic trace: the root (0) between every deep access —
        // the §IV-C temporal-locality pattern.
        let mut trace = Vec::new();
        for i in 0..500 {
            trace.push(0);
            trace.push(1 + (i % 3));
            trace.push(100 + i);
        }
        let rep = replay(&trace, 16, 4, 15);
        assert!(
            rep.hit_rate > 0.5,
            "root-heavy trace should hit: {}",
            rep.hit_rate
        );
        assert!(rep.energy_saving() > 1.0);
    }

    #[test]
    fn replay_real_simbr_traces() {
        // Build an RRT*-shaped tree and replay genuine search traces.
        let mut tree = SiMbrTree::new(4, 6);
        let mut ops = OpCount::default();
        for i in 0..400u64 {
            let c = Config::new(&[
                ((i * 7) % 83) as f64,
                ((i * 13) % 71) as f64,
                ((i * 29) % 67) as f64,
                ((i * 31) % 59) as f64,
            ]);
            tree.insert_conventional(i, c, &mut ops);
        }
        let mut stats = SearchStats::default();
        for j in 0..200u64 {
            let q = Config::new(&[
                ((j * 11) % 83) as f64 + 0.4,
                ((j * 17) % 71) as f64,
                ((j * 23) % 67) as f64,
                ((j * 37) % 59) as f64,
            ]);
            let traced = tree.nearest_traced(&q, &mut ops, &mut stats);
            let plain = tree.nearest(&q, &mut ops);
            assert_eq!(traced, plain, "traced search must stay exact");
        }
        assert!(!stats.access_trace.is_empty());
        let rep = replay(&stats.access_trace, 32, 4, 2 * 4);
        // The root and top levels recur in every search: a 128-entry
        // cache must capture meaningful reuse.
        assert!(
            rep.hit_rate > 0.4,
            "real traces should show temporal locality: {:.2}",
            rep.hit_rate
        );
        assert!(rep.energy_saving() > 1.2);
    }

    #[test]
    fn software_top_block_counters_match_pinned_model() {
        // The software engine's per-tree hit/miss counters and the
        // hardware pinned-prefix model must agree access-for-access on
        // the same trace — that is the §IV-C "software analog is the
        // modeled cache" claim, checked rather than asserted.
        let mut tree = SiMbrTree::new(4, 6);
        let mut ops = OpCount::default();
        for i in 0..600u64 {
            let c = Config::new(&[
                ((i * 7) % 83) as f64,
                ((i * 13) % 71) as f64,
                ((i * 29) % 67) as f64,
                ((i * 31) % 59) as f64,
            ]);
            tree.insert_conventional(i, c, &mut ops);
        }
        let before = tree.cache_stats();
        let mut stats = SearchStats::default();
        for j in 0..150u64 {
            let q = Config::new(&[
                ((j * 19) % 83) as f64 + 0.3,
                ((j * 11) % 71) as f64,
                ((j * 41) % 67) as f64,
                ((j * 5) % 59) as f64,
            ]);
            let _ = tree.nearest_traced(&q, &mut ops, &mut stats);
        }
        let after = tree.cache_stats();
        let rep = replay_pinned(&stats.access_trace, tree.top_block_len(), 2 * 4);
        assert_eq!(rep.accesses, stats.nodes_visited);
        assert_eq!(rep.hits, after.top_hits - before.top_hits);
        assert_eq!(
            rep.accesses - rep.hits,
            after.top_misses - before.top_misses
        );
        // The pinned block earns its keep on real traces.
        assert!(rep.hits > 0, "top levels recur in every search");
        assert!(rep.energy_saving() > 1.0);
        // Sanity versus the LRU model: an LRU cache sized to hold the
        // pinned block can only do better or equal on prefix residents,
        // so its overall hit rate should be in the same regime.
        let lru = replay(&stats.access_trace, 32, 4, 2 * 4);
        assert!(lru.hit_rate > 0.0);
    }

    #[test]
    fn bigger_caches_hit_more() {
        let mut trace = Vec::new();
        for i in 0..2000usize {
            trace.push(i % 97);
        }
        let small = replay(&trace, 4, 2, 8);
        let big = replay(&trace, 32, 4, 8);
        assert!(big.hit_rate >= small.hit_rate);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_geometry_rejected() {
        let _ = LruCache::new(0, 1);
    }
}
