//! 28nm technology constants and baseline machine models.
//!
//! Every constant here is a *documented, swappable knob*. The reproduction
//! reports ratios (speedup, energy-efficiency, area-efficiency) between
//! designs running identical counted workloads, so the shapes of the
//! evaluation figures are insensitive to the exact values — but the
//! defaults are chosen to be representative of 28nm CMOS literature and to
//! land the MOPED design point near the paper's 0.62 mm² / 137.5 mW.

/// Operating frequency of the MOPED engine and ASIC baselines (Hz).
pub const CLOCK_HZ: f64 = 1.0e9;

/// Energy of one 16-bit MAC-slot operation at 28nm (joules).
///
/// 16-bit multiply-accumulate energies reported for 28–32nm span roughly
/// 0.4–1 pJ; 0.6 pJ is a mid-range pick.
pub const MAC_ENERGY_J: f64 = 0.6e-12;

/// Silicon area of one 16-bit MAC including local pipeline registers
/// (mm²). 168 of these ≈ 0.094 mm².
pub const MAC_AREA_MM2: f64 = 5.6e-4;

/// Energy per 16-bit word read/written from a small on-chip SRAM bank
/// (joules). ~0.08 pJ/bit plus sense/decode overhead.
pub const SRAM_WORD_ENERGY_J: f64 = 1.6e-12;

/// Energy per 16-bit word served from a small cache / register-file
/// structure (the Top NS Cache, trace cache, neighborhood cache).
pub const CACHE_WORD_ENERGY_J: f64 = 0.4e-12;

/// SRAM macro density at 28nm (mm² per KB), including periphery.
pub const SRAM_AREA_MM2_PER_KB: f64 = 2.6e-3;

/// Static (leakage) power of the whole engine (watts).
pub const LEAKAGE_W: f64 = 8.0e-3;

/// Number of 16-bit MACs in the MOPED design example (§V-B).
pub const TOTAL_MACS: usize = 168;

/// On-chip SRAM budget of the design example in KB (§V-B).
pub const TOTAL_SRAM_KB: f64 = 198.0;

/// MAC-lane allocation per functional unit. The neighbor-search component
/// and the collision checker dominate; the refinement module owns its own
/// checker copy (Fig 11), and the SI-MBR operator + steering share the
/// remainder. Sums to [`TOTAL_MACS`].
pub mod lanes {
    /// Neighbor-search component lanes.
    pub const NS: usize = 48;
    /// Tree-extension collision checker lanes.
    pub const CC: usize = 64;
    /// Tree-refinement module lanes (distance calculator + checker copy).
    pub const REFINE: usize = 40;
    /// SI-MBR-Tree operator + steering + S&R unit lanes.
    pub const TREE_OP: usize = 16;
}

/// Pipeline bookkeeping overheads, in cycles.
pub mod overhead {
    /// Per-round fixed cost of the S&R repair comparison (compare the
    /// speculated nearest against up to the few missing neighbors).
    pub const REPAIR_CYCLES: u64 = 6;
    /// Per-round sampling cost (LFSR draws + bound scaling).
    pub const SAMPLE_CYCLES: u64 = 4;
}

/// Depth of the sampled-point FIFO between NS and CC units (§IV-B:
/// 20 entries suffice across all workloads).
pub const FIFO_DEPTH: usize = 20;

/// Capacity of the Missing Neighbors Buffer (§IV-B: 5 entries suffice).
pub const MISSING_NEIGHBOR_CAPACITY: usize = 5;

/// CPU baseline model (§V-B compares against an AMD EPYC 7601 running the
/// RTRBench C++ RRT\*).
pub mod cpu {
    /// Core clock (Hz).
    pub const CLOCK_HZ: f64 = 2.2e9;
    /// Machine instructions executed per counted MAC-equivalent algorithm
    /// operation. General-purpose planners spend the bulk of their cycles
    /// on pointer chasing, cache misses, dynamic dispatch, and allocation
    /// around each arithmetic op; 25 is a conservative literature-typical
    /// expansion for pointer-heavy tree code.
    pub const INSTRUCTIONS_PER_OP: f64 = 25.0;
    /// Sustained IPC for this workload class (branchy, cache-missing).
    pub const EFFECTIVE_IPC: f64 = 1.5;
    /// Core-level energy per retired instruction (joules): dynamic energy
    /// of the core pipeline + L1/L2 traffic, excluding uncore and DRAM.
    /// 60–150 pJ/instruction is the usual 14nm-server-core band.
    pub const ENERGY_PER_INSTRUCTION_J: f64 = 100e-12;
}

/// CODAcc occupancy-grid collision baseline model (Bakhshalipour et al., ISCA'22).
pub mod codacc {
    /// Grid resolution: one cell per workspace unit (paper footnote 3).
    pub const CELL_PER_UNIT: f64 = 1.0;
    /// Number of CODAcc accelerator instances integrated (paper: four).
    pub const UNITS: usize = 4;
    /// Occupancy cells tested per cycle per unit: a 64-cell grid row is
    /// read per access and compared in parallel (CODAcc's row-parallel
    /// datapath) — this is what makes the grid method competitive for
    /// collision checking despite volume-proportional work.
    pub const CELLS_PER_CYCLE_PER_UNIT: f64 = 64.0;
    /// Energy per occupancy-cell test (grid word read amortized), joules.
    pub const CELL_ENERGY_J: f64 = 0.25e-12;
    /// Extra datapath area of the four CODAcc units (mm²). The 3.2 MB
    /// occupancy grid itself is CPU-hosted and excluded, per the paper.
    pub const EXTRA_AREA_MM2: f64 = 0.08;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lane_allocation_sums_to_total() {
        assert_eq!(
            lanes::NS + lanes::CC + lanes::REFINE + lanes::TREE_OP,
            TOTAL_MACS
        );
    }

    #[test]
    #[allow(clippy::assertions_on_constants)] // sanity-pins the model's magnitudes
    fn constants_are_physical() {
        assert!(MAC_ENERGY_J > 0.0 && MAC_ENERGY_J < 1e-10);
        assert!(SRAM_WORD_ENERGY_J > CACHE_WORD_ENERGY_J);
        assert!(CLOCK_HZ >= 1e8);
        assert!(cpu::INSTRUCTIONS_PER_OP >= 1.0);
        assert!(codacc::UNITS >= 1);
    }

    #[test]
    fn sr_buffers_match_paper() {
        assert_eq!(FIFO_DEPTH, 20);
        assert_eq!(MISSING_NEIGHBOR_CAPACITY, 5);
        // 0.75 KB total: 20 FIFO entries + 5 MNB entries of (id + d·16-bit
        // coords + distance) comfortably fit.
        let entry_bytes = 2 * (1 + 8 + 1); // 16-bit words
        let total = (FIFO_DEPTH + MISSING_NEIGHBOR_CAPACITY) * entry_bytes;
        assert!(total <= 768, "S&R buffers exceed 0.75KB: {total}B");
    }
}
