//! Design-point roll-up: area, power, and SRAM budget of the MOPED
//! hardware example (§V-B: 168 MACs, 198 KB SRAM, 0.62 mm², 137.5 mW at
//! 1 GHz in 28nm).

use crate::params;

/// One on-chip memory of the Fig 11 floorplan.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SramBank {
    /// Bank name as it appears in the architecture figure.
    pub name: &'static str,
    /// Capacity in KB.
    pub kb: f64,
}

/// A parameterized MOPED design point.
#[derive(Clone, Debug, PartialEq)]
pub struct DesignPoint {
    macs: usize,
    banks: Vec<SramBank>,
    /// Average fraction of MAC lanes toggling per cycle (activity factor
    /// used for the dynamic-power estimate).
    activity: f64,
    /// Average SRAM words touched per cycle.
    words_per_cycle: f64,
}

impl DesignPoint {
    /// A custom design point.
    ///
    /// # Panics
    ///
    /// Panics if `macs == 0` or activity is outside `(0, 1]`.
    pub fn new(macs: usize, banks: Vec<SramBank>, activity: f64, words_per_cycle: f64) -> Self {
        assert!(macs > 0, "need at least one MAC");
        assert!(activity > 0.0 && activity <= 1.0, "activity in (0,1]");
        DesignPoint {
            macs,
            banks,
            activity,
            words_per_cycle,
        }
    }

    /// Number of MAC units.
    pub fn macs(&self) -> usize {
        self.macs
    }

    /// The SRAM banks.
    pub fn banks(&self) -> &[SramBank] {
        &self.banks
    }

    /// Total SRAM capacity (KB).
    pub fn sram_kb(&self) -> f64 {
        self.banks.iter().map(|b| b.kb).sum()
    }

    /// Datapath + memory silicon area (mm²).
    pub fn area_mm2(&self) -> f64 {
        self.macs as f64 * params::MAC_AREA_MM2 + self.sram_kb() * params::SRAM_AREA_MM2_PER_KB
    }

    /// Average power at the nominal clock (watts): switching MACs plus
    /// SRAM traffic plus leakage.
    pub fn power_w(&self) -> f64 {
        let mac_dyn = self.macs as f64 * self.activity * params::MAC_ENERGY_J * params::CLOCK_HZ;
        let mem_dyn = self.words_per_cycle * params::SRAM_WORD_ENERGY_J * params::CLOCK_HZ;
        mac_dyn + mem_dyn + params::LEAKAGE_W
    }
}

impl Default for DesignPoint {
    /// The paper's design example: 168 MACs and a 198 KB SRAM budget
    /// split across the Fig 11 memories, tuned to land near 0.62 mm² and
    /// 137.5 mW.
    fn default() -> Self {
        DesignPoint::new(
            params::TOTAL_MACS,
            vec![
                // Exploration-tree node coordinates: 5000 nodes × 8 DoF ×
                // 16 bit ≈ 80 KB.
                SramBank {
                    name: "EXP Node SRAM",
                    kb: 80.0,
                },
                // SI-MBR-Tree bottom levels (MBRs + leaf pointers).
                SramBank {
                    name: "Bottom NS SRAM",
                    kb: 64.0,
                },
                // Cached top levels of the SI-MBR-Tree.
                SramBank {
                    name: "Top NS Cache",
                    kb: 4.0,
                },
                // OBB-format obstacles (48 × 15 words is tiny; sized for
                // headroom and double buffering).
                SramBank {
                    name: "Obstacle OBB SRAM",
                    kb: 8.0,
                },
                // AABB-relaxed obstacle R-tree.
                SramBank {
                    name: "Obstacle AABB SRAM",
                    kb: 8.0,
                },
                // EXP-tree structure: parent links + path costs.
                SramBank {
                    name: "EXP Struct SRAM",
                    kb: 24.0,
                },
                // Neighborhood cache shared with the refinement module.
                SramBank {
                    name: "Neighborhood Cache",
                    kb: 8.0,
                },
                // S&R FIFO + Missing Neighbors Buffer (0.75 KB) + misc.
                SramBank {
                    name: "S&R Buffers",
                    kb: 2.0,
                },
            ],
            0.8,
            30.5,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_budget() {
        let d = DesignPoint::default();
        assert_eq!(d.macs(), 168);
        assert!(
            (d.sram_kb() - 198.0).abs() < 1e-9,
            "SRAM budget {}",
            d.sram_kb()
        );
    }

    #[test]
    fn default_area_near_paper() {
        let d = DesignPoint::default();
        let area = d.area_mm2();
        assert!(
            (area - 0.62).abs() < 0.08,
            "area {area:.3} mm² should be near the paper's 0.62"
        );
    }

    #[test]
    fn default_power_near_paper() {
        let d = DesignPoint::default();
        let p = d.power_w();
        assert!(
            (p - 0.1375).abs() < 0.04,
            "power {:.1} mW should be near the paper's 137.5",
            p * 1e3
        );
    }

    #[test]
    fn area_scales_with_macs_and_sram() {
        let small = DesignPoint::new(
            64,
            vec![SramBank {
                name: "m",
                kb: 32.0,
            }],
            0.5,
            4.0,
        );
        let big = DesignPoint::new(
            256,
            vec![SramBank {
                name: "m",
                kb: 256.0,
            }],
            0.5,
            4.0,
        );
        assert!(big.area_mm2() > small.area_mm2());
    }

    #[test]
    fn power_includes_leakage_floor() {
        let idle = DesignPoint::new(1, Vec::new(), 1e-6, 0.0);
        assert!(idle.power_w() >= params::LEAKAGE_W);
    }

    #[test]
    #[should_panic(expected = "at least one MAC")]
    fn zero_macs_rejected() {
        let _ = DesignPoint::new(0, Vec::new(), 0.5, 1.0);
    }

    #[test]
    fn bank_names_are_unique() {
        let d = DesignPoint::default();
        let names: std::collections::HashSet<&str> = d.banks().iter().map(|b| b.name).collect();
        assert_eq!(names.len(), d.banks().len());
    }
}
