//! Property-based tests for the obstacle R-tree.

use moped_geometry::{Mat3, Obb, OpCount, Vec3};
use moped_rtree::{FilterStats, RTree};
use proptest::prelude::*;

fn arb_obb() -> impl Strategy<Value = Obb> {
    (
        (-60.0..60.0f64, -60.0..60.0f64, -60.0..60.0f64),
        (0.5..8.0f64, 0.5..8.0f64, 0.5..8.0f64),
        -3.1..3.1f64,
        -1.5..1.5f64,
        -3.1..3.1f64,
    )
        .prop_map(|((x, y, z), (hx, hy, hz), yaw, pitch, roll)| {
            Obb::new(
                Vec3::new(x, y, z),
                Vec3::new(hx, hy, hz),
                Mat3::from_euler(yaw, pitch, roll),
            )
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The hierarchical filter returns exactly the same candidate set as
    /// the exhaustive per-obstacle AABB scan, for any obstacle field,
    /// fanout, and probe.
    #[test]
    fn filter_equals_linear_scan(
        obstacles in prop::collection::vec(arb_obb(), 1..40),
        probe in arb_obb(),
        fanout in 2usize..9,
    ) {
        let tree = RTree::build(&obstacles, fanout);
        let mut ops = OpCount::default();
        let mut a = tree.filter(&probe, &mut ops);
        let mut b = tree.filter_linear(&probe, &mut ops);
        a.sort_unstable();
        b.sort_unstable();
        prop_assert_eq!(a, b);
    }

    /// The filter result is a superset of truly colliding obstacles: no
    /// exact OBB collision is ever missed by the first stage.
    #[test]
    fn filter_never_misses_a_collision(
        obstacles in prop::collection::vec(arb_obb(), 1..30),
        probe in arb_obb(),
    ) {
        let tree = RTree::build(&obstacles, 4);
        let mut ops = OpCount::default();
        let candidates = tree.filter(&probe, &mut ops);
        for (i, obs) in obstacles.iter().enumerate() {
            if obs.intersects(&probe) {
                prop_assert!(
                    candidates.contains(&i),
                    "obstacle {i} collides but was filtered out"
                );
            }
        }
    }

    /// Filter statistics are internally consistent: survivors equal the
    /// returned candidate count, and checks bound pruning.
    #[test]
    fn filter_stats_consistent(
        obstacles in prop::collection::vec(arb_obb(), 1..40),
        probe in arb_obb(),
    ) {
        let tree = RTree::build(&obstacles, 4);
        let mut ops = OpCount::default();
        let mut stats = FilterStats::default();
        let out = tree.filter_with_stats(&probe, &mut ops, &mut stats);
        prop_assert_eq!(stats.survivors as usize, out.len());
        prop_assert!(stats.pruned_subtrees <= stats.node_checks);
        prop_assert!(stats.leaf_checks as usize <= obstacles.len());
    }

    /// Build is total and bounded: node count is linear in obstacles and
    /// height logarithmic.
    #[test]
    fn build_shape_is_sane(obstacles in prop::collection::vec(arb_obb(), 1..120), fanout in 2usize..9) {
        let tree = RTree::build(&obstacles, fanout);
        prop_assert_eq!(tree.len(), obstacles.len());
        prop_assert!(tree.node_count() <= 4 * obstacles.len() + 4);
        let max_height =
            (obstacles.len() as f64).log(fanout as f64).ceil() as usize + 3;
        prop_assert!(tree.height() <= max_height,
            "height {} too large for {} obstacles fanout {fanout}", tree.height(), obstacles.len());
    }
}
