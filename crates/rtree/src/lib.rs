//! Static obstacle R-tree for MOPED's first-stage collision filter.
//!
//! MOPED's two-stage collision scheme (§III-A) stores obstacle AABBs in a
//! hierarchical R-tree built **offline** with the Sort-Tile-Recursive (STR)
//! bulk-loading algorithm (Leutenegger et al., ICDE'97). At query time the
//! robot's OBB is tested against node AABBs with the cheap AABB–OBB SAT;
//! a clear node prunes its entire subtree, so most exact OBB–OBB checks are
//! never issued.
//!
//! The tree is *static by design*: the paper treats obstacle-tree
//! construction as an offline step that does not affect runtime cost, and
//! this crate mirrors that contract (build once per environment, then only
//! query).
//!
//! # Example
//!
//! ```
//! use moped_geometry::{Obb, OpCount, Vec3};
//! use moped_rtree::RTree;
//!
//! let obstacles = vec![
//!     Obb::axis_aligned(Vec3::new(10.0, 10.0, 10.0), Vec3::splat(2.0)),
//!     Obb::axis_aligned(Vec3::new(90.0, 90.0, 90.0), Vec3::splat(2.0)),
//! ];
//! let tree = RTree::build(&obstacles, 4);
//! let robot = Obb::axis_aligned(Vec3::new(11.0, 10.0, 10.0), Vec3::splat(1.0));
//! let mut ops = OpCount::default();
//! let candidates = tree.filter(&robot, &mut ops);
//! assert_eq!(candidates, vec![0]);
//! ```

#![deny(missing_docs)]

use moped_geometry::{sat, Aabb, Obb, OpCount, Vec3};

/// Statistics for one filter traversal, used by the evaluation figures to
/// report how many checks the first stage actually performed vs skipped.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FilterStats {
    /// Internal / leaf-group node AABB–OBB tests performed.
    pub node_checks: u64,
    /// Per-obstacle AABB–OBB tests performed at the leaves.
    pub leaf_checks: u64,
    /// Subtrees pruned without visiting their children.
    pub pruned_subtrees: u64,
    /// Obstacles that survived the first stage (need exact checks).
    pub survivors: u64,
}

impl FilterStats {
    /// Total first-stage SAT queries issued.
    pub fn total_checks(&self) -> u64 {
        self.node_checks + self.leaf_checks
    }
}

#[derive(Clone, Debug)]
enum Children {
    /// Indices into `nodes`.
    Inner(Vec<usize>),
    /// Obstacle ids.
    Leaves(Vec<usize>),
}

#[derive(Clone, Debug)]
struct Node {
    aabb: Aabb,
    children: Children,
}

/// A static R-tree over OBB obstacles, bulk-loaded with STR.
///
/// Node bounding volumes are AABBs, as the R-tree structure requires; the
/// per-obstacle AABBs at the leaf fringe are the relaxations of the stored
/// OBBs. See the crate docs for the query contract.
#[derive(Clone, Debug)]
pub struct RTree {
    nodes: Vec<Node>,
    /// Per-obstacle AABB relaxations, indexed by obstacle id.
    obstacle_aabbs: Vec<Aabb>,
    root: Option<usize>,
    fanout: usize,
    height: usize,
}

impl RTree {
    /// Bulk-loads an R-tree over `obstacles` with the given `fanout`
    /// (maximum children per node) using Sort-Tile-Recursive packing.
    ///
    /// An empty obstacle slice yields an empty tree whose
    /// [`RTree::filter`] always returns no candidates.
    ///
    /// # Panics
    ///
    /// Panics if `fanout < 2`.
    pub fn build(obstacles: &[Obb], fanout: usize) -> RTree {
        assert!(fanout >= 2, "R-tree fanout must be at least 2");
        let obstacle_aabbs: Vec<Aabb> = obstacles.iter().map(Aabb::from_obb).collect();
        if obstacles.is_empty() {
            return RTree {
                nodes: Vec::new(),
                obstacle_aabbs,
                root: None,
                fanout,
                height: 0,
            };
        }

        // STR leaf packing: recursively tile the id list along x, y, z of
        // the obstacle centers so each leaf holds up to `fanout` nearby
        // obstacles.
        let ids: Vec<usize> = (0..obstacles.len()).collect();
        let centers: Vec<Vec3> = obstacle_aabbs.iter().map(Aabb::center).collect();
        let planar = obstacles.iter().all(Obb::is_planar);
        let axes: &[usize] = if planar { &[0, 1] } else { &[0, 1, 2] };
        let mut groups: Vec<Vec<usize>> = Vec::new();
        str_tile(&ids, &centers, axes, fanout, &mut groups);

        let mut nodes: Vec<Node> = Vec::new();
        let mut level: Vec<usize> = groups
            .into_iter()
            .map(|g| {
                let aabb = g
                    .iter()
                    .map(|&i| obstacle_aabbs[i])
                    .reduce(|a, b| a.union(&b))
                    .expect("STR groups are non-empty");
                nodes.push(Node {
                    aabb,
                    children: Children::Leaves(g),
                });
                nodes.len() - 1
            })
            .collect();

        // Pack upper levels: STR ordering keeps consecutive leaves spatially
        // close, so chunked packing preserves locality.
        let mut height = 1;
        while level.len() > 1 {
            let mut next = Vec::new();
            for chunk in level.chunks(fanout) {
                let aabb = chunk
                    .iter()
                    .map(|&i| nodes[i].aabb)
                    .reduce(|a, b| a.union(&b))
                    .expect("chunks are non-empty");
                nodes.push(Node {
                    aabb,
                    children: Children::Inner(chunk.to_vec()),
                });
                next.push(nodes.len() - 1);
            }
            level = next;
            height += 1;
        }

        RTree {
            root: Some(level[0]),
            nodes,
            obstacle_aabbs,
            fanout,
            height,
        }
    }

    /// Number of obstacles indexed.
    pub fn len(&self) -> usize {
        self.obstacle_aabbs.len()
    }

    /// Returns `true` if the tree indexes no obstacles.
    pub fn is_empty(&self) -> bool {
        self.obstacle_aabbs.is_empty()
    }

    /// Tree height in levels (0 for an empty tree; 1 = root is a leaf).
    pub fn height(&self) -> usize {
        self.height
    }

    /// Total node count (internal + leaf-group nodes).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Configured maximum fanout.
    pub fn fanout(&self) -> usize {
        self.fanout
    }

    /// The AABB relaxation stored for obstacle `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn obstacle_aabb(&self, id: usize) -> &Aabb {
        &self.obstacle_aabbs[id]
    }

    /// First-stage filter: returns the ids of obstacles whose AABB
    /// relaxation intersects the robot body `robot`, pruning whole
    /// subtrees whose group AABB is clear. Discards traversal statistics;
    /// see [`RTree::filter_with_stats`].
    pub fn filter(&self, robot: &Obb, ops: &mut OpCount) -> Vec<usize> {
        let mut stats = FilterStats::default();
        self.filter_with_stats(robot, ops, &mut stats)
    }

    /// First-stage filter with traversal statistics.
    ///
    /// Every AABB–OBB SAT issued is charged to `ops`; node/leaf check
    /// counts and pruning counts accumulate into `stats`. The result is a
    /// *superset* of the truly colliding obstacles (AABBs are
    /// conservative), and — crucially for correctness — never omits a
    /// colliding obstacle.
    pub fn filter_with_stats(
        &self,
        robot: &Obb,
        ops: &mut OpCount,
        stats: &mut FilterStats,
    ) -> Vec<usize> {
        let mut out = Vec::new();
        let mut stack = Vec::new();
        self.filter_into(robot, ops, stats, &mut stack, &mut out);
        out
    }

    /// Allocation-free variant of [`RTree::filter_with_stats`]: the caller
    /// supplies the traversal stack and the output buffer (both are
    /// cleared first), so planner hot loops can reuse scratch storage.
    pub fn filter_into(
        &self,
        robot: &Obb,
        ops: &mut OpCount,
        stats: &mut FilterStats,
        stack: &mut Vec<usize>,
        out: &mut Vec<usize>,
    ) {
        let _span = moped_obs::span(moped_obs::Stage::BroadPhase);
        out.clear();
        stack.clear();
        let Some(root) = self.root else { return };
        stack.push(root);
        while let Some(ni) = stack.pop() {
            let node = &self.nodes[ni];
            stats.node_checks += 1;
            // Charge the node's AABB read (6 words 3D / 4 words 2D).
            ops.mem_words += if robot.is_planar() { 4 } else { 6 };
            if !sat::aabb_obb(&node.aabb, robot, ops) {
                stats.pruned_subtrees += 1;
                continue;
            }
            match &node.children {
                Children::Inner(kids) => stack.extend_from_slice(kids),
                Children::Leaves(obstacles) => {
                    for &oid in obstacles {
                        stats.leaf_checks += 1;
                        ops.mem_words += if robot.is_planar() { 4 } else { 6 };
                        if sat::aabb_obb(&self.obstacle_aabbs[oid], robot, ops) {
                            stats.survivors += 1;
                            out.push(oid);
                        }
                    }
                }
            }
        }
    }

    /// On-chip storage footprint of the tree in 16-bit words (every node
    /// AABB is 6 words plus one child pointer word per child), used by the
    /// hardware model for SRAM sizing.
    pub fn memory_words(&self) -> u64 {
        let mut words = 0u64;
        for node in &self.nodes {
            words += 6; // AABB
            words += match &node.children {
                Children::Inner(k) => k.len() as u64,
                Children::Leaves(l) => l.len() as u64,
            };
        }
        words + self.obstacle_aabbs.len() as u64 * 6
    }

    /// Exhaustive reference filter (no hierarchy): checks the robot
    /// against every per-obstacle AABB. Used by tests to validate the
    /// superset property and by the figures to quantify pruning.
    pub fn filter_linear(&self, robot: &Obb, ops: &mut OpCount) -> Vec<usize> {
        self.obstacle_aabbs
            .iter()
            .enumerate()
            .filter(|(_, aabb)| sat::aabb_obb(aabb, robot, ops))
            .map(|(i, _)| i)
            .collect()
    }
}

/// Recursive Sort-Tile-Recursive partition of `ids` into groups of at most
/// `cap`, slicing along `axes` in order.
fn str_tile(
    ids: &[usize],
    centers: &[Vec3],
    axes: &[usize],
    cap: usize,
    out: &mut Vec<Vec<usize>>,
) {
    if ids.len() <= cap {
        if !ids.is_empty() {
            out.push(ids.to_vec());
        }
        return;
    }
    let mut sorted = ids.to_vec();
    let axis = axes[0];
    sorted.sort_by(|&a, &b| {
        centers[a]
            .component(axis)
            .partial_cmp(&centers[b].component(axis))
            .expect("obstacle centers must be finite")
    });
    let leaves = ids.len().div_ceil(cap);
    let slabs = if axes.len() == 1 {
        leaves
    } else {
        // ceil(leaves^(1/remaining)) slabs along this axis.
        (leaves as f64).powf(1.0 / axes.len() as f64).ceil() as usize
    }
    .max(1);
    let per_slab = ids.len().div_ceil(slabs);
    for chunk in sorted.chunks(per_slab) {
        if axes.len() == 1 {
            for leaf in chunk.chunks(cap) {
                out.push(leaf.to_vec());
            }
        } else {
            str_tile(chunk, centers, &axes[1..], cap, out);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid_obstacles(n_per_axis: usize, spacing: f64) -> Vec<Obb> {
        let mut v = Vec::new();
        for i in 0..n_per_axis {
            for j in 0..n_per_axis {
                for k in 0..n_per_axis {
                    v.push(Obb::axis_aligned(
                        Vec3::new(i as f64 * spacing, j as f64 * spacing, k as f64 * spacing),
                        Vec3::splat(1.0),
                    ));
                }
            }
        }
        v
    }

    #[test]
    fn empty_tree_filters_nothing() {
        let tree = RTree::build(&[], 4);
        let robot = Obb::axis_aligned(Vec3::ZERO, Vec3::splat(1.0));
        let mut ops = OpCount::default();
        assert!(tree.filter(&robot, &mut ops).is_empty());
        assert!(tree.is_empty());
        assert_eq!(tree.height(), 0);
    }

    #[test]
    fn single_obstacle_hit_and_miss() {
        let tree = RTree::build(&[Obb::axis_aligned(Vec3::splat(5.0), Vec3::splat(1.0))], 4);
        let mut ops = OpCount::default();
        let near = Obb::axis_aligned(Vec3::splat(5.5), Vec3::splat(1.0));
        let far = Obb::axis_aligned(Vec3::splat(50.0), Vec3::splat(1.0));
        assert_eq!(tree.filter(&near, &mut ops), vec![0]);
        assert!(tree.filter(&far, &mut ops).is_empty());
    }

    #[test]
    fn filter_matches_linear_reference() {
        let obstacles = grid_obstacles(4, 7.0);
        let tree = RTree::build(&obstacles, 4);
        let mut ops = OpCount::default();
        for probe in [
            Vec3::new(0.0, 0.0, 0.0),
            Vec3::new(10.5, 10.5, 10.5),
            Vec3::new(3.0, 14.0, 7.0),
            Vec3::new(-5.0, -5.0, -5.0),
        ] {
            let robot = Obb::from_euler(probe, Vec3::splat(2.0), 0.3, 0.2, 0.1);
            let mut a = tree.filter(&robot, &mut ops);
            let mut b = tree.filter_linear(&robot, &mut ops);
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b);
        }
    }

    #[test]
    fn pruning_actually_skips_work() {
        let obstacles = grid_obstacles(4, 20.0); // 64 well-separated obstacles
        let tree = RTree::build(&obstacles, 4);
        let robot = Obb::axis_aligned(Vec3::splat(0.0), Vec3::splat(1.5));
        let mut ops = OpCount::default();
        let mut stats = FilterStats::default();
        let _ = tree.filter_with_stats(&robot, &mut ops, &mut stats);
        assert!(
            stats.pruned_subtrees > 0,
            "expected pruning on sparse scene"
        );
        assert!(
            stats.total_checks() < obstacles.len() as u64 * 2,
            "hierarchy should beat exhaustive checking"
        );
    }

    #[test]
    fn tree_height_grows_logarithmically() {
        let obstacles = grid_obstacles(4, 5.0); // 64 obstacles, fanout 4 → height >= 3
        let tree = RTree::build(&obstacles, 4);
        assert!(tree.height() >= 3);
        assert!(tree.node_count() > 16);
    }

    #[test]
    fn node_aabbs_contain_children() {
        let obstacles = grid_obstacles(3, 6.0);
        let tree = RTree::build(&obstacles, 4);
        for node in &tree.nodes {
            match &node.children {
                Children::Inner(kids) => {
                    for &k in kids {
                        assert!(node.aabb.contains_aabb(&tree.nodes[k].aabb));
                    }
                }
                Children::Leaves(obs) => {
                    for &o in obs {
                        assert!(node.aabb.contains_aabb(&tree.obstacle_aabbs[o]));
                    }
                }
            }
        }
    }

    #[test]
    fn every_obstacle_reachable_exactly_once() {
        let obstacles = grid_obstacles(3, 4.0);
        let tree = RTree::build(&obstacles, 5);
        let mut seen = vec![0usize; obstacles.len()];
        for node in &tree.nodes {
            if let Children::Leaves(obs) = &node.children {
                for &o in obs {
                    seen[o] += 1;
                }
            }
        }
        assert!(
            seen.iter().all(|&c| c == 1),
            "leaf partition must cover each obstacle once"
        );
    }

    #[test]
    fn planar_obstacles_build_2d_tiling() {
        let obstacles: Vec<Obb> = (0..20)
            .map(|i| {
                Obb::planar(
                    Vec3::new((i % 5) as f64 * 10.0, (i / 5) as f64 * 10.0, 0.0),
                    2.0,
                    2.0,
                    0.1,
                )
            })
            .collect();
        let tree = RTree::build(&obstacles, 4);
        let robot = Obb::planar(Vec3::new(0.0, 0.0, 0.0), 1.0, 1.0, 0.0);
        let mut ops = OpCount::default();
        let hits = tree.filter(&robot, &mut ops);
        assert_eq!(hits, vec![0]);
    }

    #[test]
    #[should_panic(expected = "fanout")]
    fn tiny_fanout_rejected() {
        let _ = RTree::build(&[], 1);
    }

    #[test]
    fn memory_words_positive_for_nonempty() {
        let tree = RTree::build(&grid_obstacles(2, 5.0), 4);
        assert!(tree.memory_words() > 0);
    }

    #[test]
    fn filter_charges_ops_and_memory() {
        let tree = RTree::build(&grid_obstacles(3, 6.0), 4);
        let robot = Obb::axis_aligned(Vec3::splat(6.0), Vec3::splat(2.0));
        let mut ops = OpCount::default();
        let _ = tree.filter(&robot, &mut ops);
        assert!(ops.sat_queries > 0);
        assert!(ops.mem_words > 0);
    }
}
