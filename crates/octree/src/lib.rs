//! Octree occupancy baseline for collision checking.
//!
//! §VI of the paper argues that space-subdivision structures popular in
//! computer graphics are a poor fit for resource-constrained motion
//! planning: an octree voxelizes the workspace, so representation
//! precision trades directly against memory (the paper cites deployments
//! needing hundreds of megabytes), and the voxel relaxation suffers the
//! same false-positive path-quality problem as AABBs. This crate
//! implements that baseline so the argument is *measured* rather than
//! asserted:
//!
//! * [`Octree::build`] — subdivides the workspace cube until a node is
//!   either empty, fully covered, or at maximum depth; leaf nodes store
//!   occupancy of their voxel.
//! * [`Octree::intersects_obb`] — conservative collision query for a
//!   robot body OBB (descends only into occupied children overlapping
//!   the body's AABB).
//! * [`Octree::memory_words`] — the on-chip storage the structure would
//!   demand, the quantity Fig/§VI compares against the R-tree's.
//!
//! The occupancy test is conservative-by-construction (voxels bound the
//! true obstacle geometry from outside), mirroring the AABB-only checker
//! semantics.

#![deny(missing_docs)]

use moped_geometry::{sat, Aabb, Obb, OpCount, Vec3};

#[derive(Clone, Debug)]
enum Node {
    /// Entirely free space.
    Empty,
    /// Entirely (conservatively) occupied.
    Full,
    /// Mixed: eight children, octant-ordered.
    Split(Box<[Node; 8]>),
}

/// A cubic occupancy octree over an obstacle field.
#[derive(Clone, Debug)]
pub struct Octree {
    root: Node,
    origin: Vec3,
    extent: f64,
    max_depth: u32,
    node_count: usize,
    leaf_full: usize,
}

impl Octree {
    /// Builds the tree over `obstacles`, covering the cube at `origin`
    /// with side `extent`, subdividing to at most `max_depth` levels
    /// (voxel side = `extent / 2^max_depth`).
    ///
    /// A node becomes `Full` when any obstacle's AABB covers it entirely
    /// or when it still overlaps an obstacle at maximum depth; `Empty`
    /// when no obstacle AABB overlaps it.
    ///
    /// # Panics
    ///
    /// Panics if `extent` is not positive or `max_depth > 12` (2^36
    /// voxels is beyond any on-chip budget and would only demonstrate an
    /// out-of-memory condition).
    pub fn build(obstacles: &[Obb], origin: Vec3, extent: f64, max_depth: u32) -> Octree {
        assert!(extent > 0.0, "extent must be positive");
        assert!(max_depth <= 12, "max_depth > 12 is out of scope");
        let refs: Vec<&Obb> = obstacles.iter().collect();
        let mut node_count = 0usize;
        let mut leaf_full = 0usize;
        let root = build_rec(
            &refs,
            origin,
            extent,
            max_depth,
            &mut node_count,
            &mut leaf_full,
        );
        Octree {
            root,
            origin,
            extent,
            max_depth,
            node_count,
            leaf_full,
        }
    }

    /// Total allocated nodes.
    pub fn node_count(&self) -> usize {
        self.node_count
    }

    /// Fully-occupied leaf count.
    pub fn occupied_leaves(&self) -> usize {
        self.leaf_full
    }

    /// Voxel side length at maximum depth.
    pub fn resolution(&self) -> f64 {
        self.extent / f64::from(1u32 << self.max_depth)
    }

    /// Storage demand in 16-bit words: every node needs a 2-bit state,
    /// packed 8 states per word, plus one child-pointer word per split
    /// node — the §VI memory-consumption comparison quantity.
    pub fn memory_words(&self) -> u64 {
        let state_words = (self.node_count as u64).div_ceil(8);
        let pointer_words = self.split_count() as u64;
        state_words + pointer_words
    }

    fn split_count(&self) -> usize {
        fn rec(n: &Node) -> usize {
            match n {
                Node::Split(kids) => 1 + kids.iter().map(rec).sum::<usize>(),
                _ => 0,
            }
        }
        rec(&self.root)
    }

    /// Conservative occupancy query for a point.
    pub fn occupied(&self, p: Vec3) -> bool {
        let half = self.extent / 2.0;
        let cube = Aabb::from_center_half(self.origin + Vec3::splat(half), Vec3::splat(half));
        if !cube.contains_point(p) {
            return false;
        }
        fn rec(node: &Node, origin: Vec3, extent: f64, p: Vec3) -> bool {
            match node {
                Node::Empty => false,
                Node::Full => true,
                Node::Split(kids) => {
                    let half = extent / 2.0;
                    let ix = usize::from(p.x >= origin.x + half);
                    let iy = usize::from(p.y >= origin.y + half);
                    let iz = usize::from(p.z >= origin.z + half);
                    let idx = ix | (iy << 1) | (iz << 2);
                    let child_origin =
                        origin + Vec3::new(ix as f64 * half, iy as f64 * half, iz as f64 * half);
                    rec(&kids[idx], child_origin, half, p)
                }
            }
        }
        rec(&self.root, self.origin, self.extent, p)
    }

    /// Conservative collision query for a robot body OBB: `true` when any
    /// occupied voxel intersects the body. Charges each visited node's
    /// AABB–OBB test to `ops`.
    pub fn intersects_obb(&self, body: &Obb, ops: &mut OpCount) -> bool {
        fn rec(node: &Node, origin: Vec3, extent: f64, body: &Obb, ops: &mut OpCount) -> bool {
            let half = extent / 2.0;
            let cube = Aabb::from_center_half(origin + Vec3::splat(half), Vec3::splat(half));
            ops.mem_words += 1; // packed state read
            match node {
                Node::Empty => false,
                Node::Full => sat::aabb_obb(&cube, body, ops),
                Node::Split(kids) => {
                    if !sat::aabb_obb(&cube, body, ops) {
                        return false;
                    }
                    for (idx, kid) in kids.iter().enumerate() {
                        let child_origin = origin
                            + Vec3::new(
                                (idx & 1) as f64 * half,
                                ((idx >> 1) & 1) as f64 * half,
                                ((idx >> 2) & 1) as f64 * half,
                            );
                        if rec(kid, child_origin, half, body, ops) {
                            return true;
                        }
                    }
                    false
                }
            }
        }
        rec(&self.root, self.origin, self.extent, body, ops)
    }
}

fn build_rec(
    obstacles: &[&Obb],
    origin: Vec3,
    extent: f64,
    depth_left: u32,
    node_count: &mut usize,
    leaf_full: &mut usize,
) -> Node {
    *node_count += 1;
    let half = extent / 2.0;
    let cube = Aabb::from_center_half(origin + Vec3::splat(half), Vec3::splat(half));
    // Voxelize against the exact OBB geometry: the whole point of an
    // octree map is the resolution-tight occupancy an AABB cannot give.
    let mut scratch = OpCount::default();
    let overlapping: Vec<&Obb> = obstacles
        .iter()
        .filter(|o| sat::aabb_obb(&cube, o, &mut scratch))
        .copied()
        .collect();
    if overlapping.is_empty() {
        return Node::Empty;
    }
    let cube_inside = |o: &Obb| -> bool {
        let c = cube.center();
        let h = cube.half_extents();
        [
            Vec3::new(-h.x, -h.y, -h.z),
            Vec3::new(-h.x, -h.y, h.z),
            Vec3::new(-h.x, h.y, -h.z),
            Vec3::new(-h.x, h.y, h.z),
            Vec3::new(h.x, -h.y, -h.z),
            Vec3::new(h.x, -h.y, h.z),
            Vec3::new(h.x, h.y, -h.z),
            Vec3::new(h.x, h.y, h.z),
        ]
        .into_iter()
        .all(|d| o.contains_point(c + d))
    };
    if overlapping.iter().any(|o| cube_inside(o)) || depth_left == 0 {
        *leaf_full += 1;
        return Node::Full;
    }
    let children: Vec<Node> = (0..8)
        .map(|idx| {
            let child_origin = origin
                + Vec3::new(
                    (idx & 1) as f64 * half,
                    ((idx >> 1) & 1) as f64 * half,
                    ((idx >> 2) & 1) as f64 * half,
                );
            build_rec(
                &overlapping,
                child_origin,
                half,
                depth_left - 1,
                node_count,
                leaf_full,
            )
        })
        .collect();
    let arr: [Node; 8] = children.try_into().expect("eight octants");
    // Coalesce uniform children.
    if arr.iter().all(|c| matches!(c, Node::Full)) {
        *leaf_full += 1;
        return Node::Full;
    }
    if arr.iter().all(|c| matches!(c, Node::Empty)) {
        return Node::Empty;
    }
    Node::Split(Box::new(arr))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn single_box() -> Vec<Obb> {
        vec![Obb::axis_aligned(Vec3::splat(100.0), Vec3::splat(20.0))]
    }

    #[test]
    fn empty_world_is_all_free() {
        let tree = Octree::build(&[], Vec3::ZERO, 256.0, 6);
        assert_eq!(tree.occupied_leaves(), 0);
        assert!(!tree.occupied(Vec3::splat(100.0)));
        let body = Obb::axis_aligned(Vec3::splat(50.0), Vec3::splat(5.0));
        let mut ops = OpCount::default();
        assert!(!tree.intersects_obb(&body, &mut ops));
    }

    #[test]
    fn point_queries_match_geometry() {
        let tree = Octree::build(&single_box(), Vec3::ZERO, 256.0, 7);
        assert!(tree.occupied(Vec3::splat(100.0)), "center of the obstacle");
        assert!(!tree.occupied(Vec3::splat(10.0)), "far corner is free");
        // Outside the covered cube.
        assert!(!tree.occupied(Vec3::splat(-5.0)));
    }

    #[test]
    fn obb_query_is_conservative() {
        let obstacles = single_box();
        let tree = Octree::build(&obstacles, Vec3::ZERO, 256.0, 7);
        let mut ops = OpCount::default();
        // A body truly colliding must be detected.
        let hit = Obb::from_euler(Vec3::splat(110.0), Vec3::splat(4.0), 0.3, 0.2, 0.1);
        assert!(obstacles[0].intersects(&hit));
        assert!(tree.intersects_obb(&hit, &mut ops));
        // A far-away body must be free.
        let miss = Obb::axis_aligned(Vec3::splat(20.0), Vec3::splat(3.0));
        assert!(!tree.intersects_obb(&miss, &mut ops));
    }

    #[test]
    fn false_positives_shrink_with_depth() {
        // A rotated thin plate: coarse voxels over-cover it heavily.
        let obstacles = vec![Obb::from_euler(
            Vec3::splat(128.0),
            Vec3::new(60.0, 2.0, 60.0),
            0.6,
            0.4,
            0.2,
        )];
        let probe = Obb::axis_aligned(Vec3::new(128.0, 160.0, 128.0), Vec3::splat(4.0));
        assert!(!obstacles[0].intersects(&probe), "probe is truly free");
        let mut fp = Vec::new();
        for depth in [3u32, 5, 7] {
            let tree = Octree::build(&obstacles, Vec3::ZERO, 256.0, depth);
            let mut ops = OpCount::default();
            fp.push(tree.intersects_obb(&probe, &mut ops));
        }
        // At some coarse depth the voxelization reports a false positive;
        // by depth 7 (2-unit voxels) it must be resolved as free.
        assert!(!fp[2], "fine resolution should clear the probe");
    }

    #[test]
    fn memory_explodes_with_resolution() {
        // The §VI argument: each extra level multiplies storage.
        let obstacles: Vec<Obb> = (0..10)
            .map(|i| {
                Obb::from_euler(
                    Vec3::new(30.0 * i as f64 + 15.0, 120.0, 120.0),
                    Vec3::new(10.0, 14.0, 22.0),
                    0.3 * i as f64,
                    0.1,
                    0.0,
                )
            })
            .collect();
        let mut words = Vec::new();
        for depth in [4u32, 6, 8] {
            let tree = Octree::build(&obstacles, Vec3::ZERO, 300.0, depth);
            words.push(tree.memory_words());
        }
        assert!(words[1] > 4 * words[0], "depth 6 ≫ depth 4: {words:?}");
        assert!(words[2] > 4 * words[1], "depth 8 ≫ depth 6: {words:?}");
    }

    #[test]
    fn coalescing_keeps_uniform_regions_cheap() {
        // One tiny obstacle in a huge space: almost all nodes coalesce.
        let obstacles = vec![Obb::axis_aligned(Vec3::splat(10.0), Vec3::splat(2.0))];
        let tree = Octree::build(&obstacles, Vec3::ZERO, 256.0, 8);
        assert!(
            tree.node_count() < 6000,
            "sparse scene should stay small: {}",
            tree.node_count()
        );
    }

    #[test]
    fn resolution_matches_depth() {
        let tree = Octree::build(&[], Vec3::ZERO, 256.0, 8);
        assert_eq!(tree.resolution(), 1.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_extent_rejected() {
        let _ = Octree::build(&[], Vec3::ZERO, 0.0, 4);
    }
}
