//! Property-based tests for the octree occupancy baseline.

use moped_geometry::{Mat3, Obb, OpCount, Vec3};
use moped_octree::Octree;
use proptest::prelude::*;

fn arb_obb() -> impl Strategy<Value = Obb> {
    (
        (20.0..230.0f64, 20.0..230.0f64, 20.0..230.0f64),
        (3.0..20.0f64, 3.0..20.0f64, 3.0..20.0f64),
        -3.1..3.1f64,
        -1.5..1.5f64,
        -3.1..3.1f64,
    )
        .prop_map(|((x, y, z), (hx, hy, hz), yaw, pitch, roll)| {
            Obb::new(
                Vec3::new(x, y, z),
                Vec3::new(hx, hy, hz),
                Mat3::from_euler(yaw, pitch, roll),
            )
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Conservativeness: a body truly intersecting any obstacle is always
    /// reported occupied by the octree (no false negatives), at any
    /// depth.
    #[test]
    fn no_false_negatives(
        obstacles in prop::collection::vec(arb_obb(), 1..8),
        body in arb_obb(),
        depth in 3u32..8,
    ) {
        let tree = Octree::build(&obstacles, Vec3::ZERO, 256.0, depth);
        let truly_hit = obstacles.iter().any(|o| o.intersects(&body));
        let mut ops = OpCount::default();
        if truly_hit {
            prop_assert!(tree.intersects_obb(&body, &mut ops),
                "octree missed a real collision at depth {depth}");
        }
    }

    /// Point occupancy agrees with exact geometry up to one voxel of
    /// slack: occupied points within any obstacle must be detected, and
    /// points farther than a voxel diagonal from every obstacle must be
    /// free.
    #[test]
    fn point_occupancy_within_voxel_slack(
        obstacles in prop::collection::vec(arb_obb(), 1..6),
        (px, py, pz) in (0.0..256.0f64, 0.0..256.0f64, 0.0..256.0f64),
    ) {
        let depth = 7u32;
        let tree = Octree::build(&obstacles, Vec3::ZERO, 256.0, depth);
        let p = Vec3::new(px, py, pz);
        let inside = obstacles.iter().any(|o| o.contains_point(p));
        if inside {
            prop_assert!(tree.occupied(p), "inside point reported free");
        } else {
            // Check distance to every obstacle's AABB inflated by one
            // voxel diagonal; beyond that the point must be free.
            let slack = tree.resolution() * 3f64.sqrt();
            let clearly_free = obstacles.iter().all(|o| {
                !moped_geometry::Aabb::from_obb(o).inflated(slack).contains_point(p)
            });
            if clearly_free {
                prop_assert!(!tree.occupied(p), "far point reported occupied");
            }
        }
    }

    /// Memory grows monotonically with depth for non-trivial scenes.
    #[test]
    fn memory_monotone_in_depth(obstacles in prop::collection::vec(arb_obb(), 2..6)) {
        let m4 = Octree::build(&obstacles, Vec3::ZERO, 256.0, 4).memory_words();
        let m6 = Octree::build(&obstacles, Vec3::ZERO, 256.0, 6).memory_words();
        let m8 = Octree::build(&obstacles, Vec3::ZERO, 256.0, 8).memory_words();
        prop_assert!(m6 >= m4);
        prop_assert!(m8 >= m6);
    }
}
