//! Dynamic environments: obstacles in motion.
//!
//! The paper positions MOPED's kernels as directly applicable to the
//! dynamic-environment RRT variants it cites (Adiyatov & Varol 2017,
//! Bruce & Veloso 2002, Ferguson et al. 2006). This module supplies the
//! substrate those variants need: an obstacle field whose boxes translate
//! and spin over time, with deterministic evolution so replanning
//! experiments are reproducible.

use std::f64::consts::PI;

use moped_geometry::{Mat3, Obb, Vec3};
use moped_robot::WORKSPACE_EXTENT;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::Scenario;

/// A rigid obstacle with a constant linear velocity and spin rate.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MovingObstacle {
    /// Shape and pose at `t = 0`.
    pub initial: Obb,
    /// Workspace velocity (units per second).
    pub velocity: Vec3,
    /// Yaw spin rate (radians per second).
    pub spin: f64,
}

impl MovingObstacle {
    /// Pose at time `t`: the center translates with reflection off the
    /// workspace walls (so the scene stays busy indefinitely) and the box
    /// spins about Z.
    pub fn at(&self, t: f64) -> Obb {
        let c0 = self.initial.center();
        let reflect = |x0: f64, v: f64| -> f64 {
            if v == 0.0 {
                return x0.clamp(0.0, WORKSPACE_EXTENT);
            }
            // Triangle-wave reflection within [0, extent].
            let period = 2.0 * WORKSPACE_EXTENT;
            let raw = (x0 + v * t).rem_euclid(period);
            if raw <= WORKSPACE_EXTENT {
                raw
            } else {
                period - raw
            }
        };
        let center = Vec3::new(
            reflect(c0.x, self.velocity.x),
            reflect(c0.y, self.velocity.y),
            reflect(c0.z, self.velocity.z),
        );
        let rot = Mat3::rotation_z(self.spin * t) * self.initial.rotation();
        let moved = self.initial.at_center(center).with_rotation(rot);
        if self.initial.is_planar() {
            // Preserve planar encoding for 2D workloads.
            Obb::planar(
                Vec3::new(center.x, center.y, 0.0),
                self.initial.half_extents().x,
                self.initial.half_extents().y,
                heading_of(&rot),
            )
        } else {
            moved
        }
    }
}

fn heading_of(rot: &Mat3) -> f64 {
    rot.m[1][0].atan2(rot.m[0][0])
}

/// A scenario whose obstacle field evolves over time.
#[derive(Clone, Debug)]
pub struct DynamicScenario {
    /// The static template (robot, start, goal, initial obstacles).
    pub base: Scenario,
    /// The moving obstacles (same order as `base.obstacles`).
    pub movers: Vec<MovingObstacle>,
}

impl DynamicScenario {
    /// Animates an existing scenario: every obstacle receives a random
    /// velocity up to `max_speed` and spin up to `max_spin`, seeded
    /// deterministically.
    pub fn animate(base: Scenario, max_speed: f64, max_spin: f64, seed: u64) -> DynamicScenario {
        let mut rng = StdRng::seed_from_u64(seed ^ 0xD15A);
        let planar = base.robot.workspace_is_2d();
        let movers = base
            .obstacles
            .iter()
            .map(|o| MovingObstacle {
                initial: *o,
                velocity: Vec3::new(
                    rng.gen_range(-max_speed..=max_speed),
                    rng.gen_range(-max_speed..=max_speed),
                    if planar {
                        0.0
                    } else {
                        rng.gen_range(-max_speed..=max_speed)
                    },
                ),
                spin: rng.gen_range(-max_spin..=max_spin),
            })
            .collect();
        DynamicScenario { base, movers }
    }

    /// The obstacle field at time `t`.
    pub fn obstacles_at(&self, t: f64) -> Vec<Obb> {
        self.movers.iter().map(|m| m.at(t)).collect()
    }

    /// A static snapshot scenario frozen at time `t` (start is replaced
    /// by `from`, e.g. the robot's current configuration mid-execution).
    pub fn snapshot(&self, t: f64, from: moped_geometry::Config) -> Scenario {
        Scenario {
            robot: self.base.robot.clone(),
            obstacles: self.obstacles_at(t),
            start: from,
            goal: self.base.goal,
            seed: self.base.seed,
        }
    }
}

/// Convenience wrapper: `true` if configuration `q` collides at time `t`.
pub fn collides_at(dynamic: &DynamicScenario, q: &moped_geometry::Config, t: f64) -> bool {
    let snapshot = dynamic.snapshot(t, *q);
    snapshot.config_collides(q)
}

/// Returns a modest default spin bound (quarter turn per second).
pub fn default_spin() -> f64 {
    PI / 2.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ScenarioParams;
    use moped_robot::Robot;

    fn dynamic_scene(seed: u64) -> DynamicScenario {
        let base = Scenario::generate(Robot::drone_3d(), &ScenarioParams::with_obstacles(12), seed);
        DynamicScenario::animate(base, 10.0, default_spin(), seed)
    }

    #[test]
    fn time_zero_matches_base() {
        let d = dynamic_scene(3);
        let snap = d.obstacles_at(0.0);
        for (a, b) in snap.iter().zip(&d.base.obstacles) {
            assert!((a.center() - b.center()).norm() < 1e-9);
        }
    }

    #[test]
    fn obstacles_actually_move() {
        let d = dynamic_scene(4);
        let t0 = d.obstacles_at(0.0);
        let t5 = d.obstacles_at(5.0);
        let moved = t0
            .iter()
            .zip(&t5)
            .filter(|(a, b)| (a.center() - b.center()).norm() > 1.0)
            .count();
        assert!(
            moved > t0.len() / 2,
            "most obstacles should have moved: {moved}"
        );
    }

    #[test]
    fn reflection_keeps_centers_in_workspace() {
        let d = dynamic_scene(5);
        for t in [0.0, 7.3, 31.4, 120.0, 999.9] {
            for o in d.obstacles_at(t) {
                let c = o.center();
                assert!((0.0..=WORKSPACE_EXTENT).contains(&c.x), "t={t}, c={c:?}");
                assert!((0.0..=WORKSPACE_EXTENT).contains(&c.y));
                assert!((0.0..=WORKSPACE_EXTENT).contains(&c.z));
            }
        }
    }

    #[test]
    fn evolution_is_deterministic() {
        let a = dynamic_scene(9).obstacles_at(12.5);
        let b = dynamic_scene(9).obstacles_at(12.5);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.center(), y.center());
        }
    }

    #[test]
    fn planar_scene_stays_planar() {
        let base = Scenario::generate(Robot::mobile_2d(), &ScenarioParams::with_obstacles(8), 2);
        let d = DynamicScenario::animate(base, 8.0, default_spin(), 2);
        for o in d.obstacles_at(17.2) {
            assert!(o.is_planar());
            assert_eq!(o.center().z, 0.0);
        }
    }

    #[test]
    fn snapshot_replaces_start() {
        let d = dynamic_scene(6);
        let from = d.base.goal;
        let snap = d.snapshot(3.0, from);
        assert_eq!(snap.start, from);
        assert_eq!(snap.goal, d.base.goal);
        assert_eq!(snap.obstacles.len(), d.base.obstacles.len());
    }

    #[test]
    fn spin_rotates_boxes() {
        let base = Scenario::generate(Robot::drone_3d(), &ScenarioParams::with_obstacles(4), 7);
        let mut d = DynamicScenario::animate(base, 0.0, 0.0, 7);
        d.movers[0].spin = 1.0;
        let r0 = d.movers[0].at(0.0).rotation();
        let r1 = d.movers[0].at(1.0).rotation();
        assert!(r0 != r1, "spinning obstacle must change orientation");
    }
}
