//! A catalog of named benchmark scenes.
//!
//! Random fields (the §V methodology) measure average behaviour; named,
//! handcrafted scenes stress specific planner behaviours and give users
//! reproducible starting points. Every scene is parameterized only by the
//! robot model and is fully deterministic.

use moped_geometry::{Config, Obb, Vec3};
use moped_robot::{Robot, RobotModel, WORKSPACE_EXTENT};

use crate::Scenario;

/// The named scenes in the catalog.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum NamedScene {
    /// A wall of pillars between start and goal — forces weaving.
    PillarForest,
    /// Three staggered walls forming an S-corridor.
    SlalomCorridor,
    /// A box canyon: goal sits inside a three-walled enclosure.
    BoxCanyon,
    /// Sparse far-apart obstacles — the easy case planners must not
    /// regress on.
    OpenMeadow,
}

impl NamedScene {
    /// Every catalog scene.
    pub const ALL: [NamedScene; 4] = [
        NamedScene::PillarForest,
        NamedScene::SlalomCorridor,
        NamedScene::BoxCanyon,
        NamedScene::OpenMeadow,
    ];

    /// Human-readable identifier.
    pub fn name(&self) -> &'static str {
        match self {
            NamedScene::PillarForest => "pillar-forest",
            NamedScene::SlalomCorridor => "slalom-corridor",
            NamedScene::BoxCanyon => "box-canyon",
            NamedScene::OpenMeadow => "open-meadow",
        }
    }

    /// Resolves a scene from its [`name`](NamedScene::name) — the lookup
    /// a serving layer uses to map request environment ids to scenes.
    pub fn from_name(name: &str) -> Option<NamedScene> {
        NamedScene::ALL.into_iter().find(|s| s.name() == name)
    }
}

/// Builds a named scene for the given robot.
///
/// Free-flying robots (2D mobile / 3D drone) get workspace start/goal
/// poses flanking the scene; arms get joint-space start/goal sweeps and
/// the obstacle field is positioned within reach.
///
/// # Panics
///
/// Panics in debug builds if the constructed start or goal collides —
/// catalog scenes are hand-verified layouts.
pub fn build(scene: NamedScene, robot: Robot) -> Scenario {
    let planar = robot.workspace_is_2d();
    let mid = WORKSPACE_EXTENT / 2.0;
    let z_mid = if planar { 0.0 } else { mid };
    let is_arm = !matches!(robot.model(), RobotModel::Mobile2d | RobotModel::Drone3d);
    // Arms reach ~115 units from the base at the floor center; scale the
    // scene geometry into that shell so it actually interferes.
    let scale = if is_arm { 0.35 } else { 1.0 };
    let center = if is_arm {
        Vec3::new(mid, mid, 55.0)
    } else {
        Vec3::new(mid, mid, z_mid)
    };

    let make = |x: f64, y: f64, z: f64, hx: f64, hy: f64, hz: f64, yaw: f64| -> Obb {
        let p = center + Vec3::new(x, y, if planar { 0.0 } else { z }) * scale;
        if planar {
            Obb::planar(Vec3::new(p.x, p.y, 0.0), hx * scale, hy * scale, yaw)
        } else {
            Obb::from_euler(p, Vec3::new(hx, hy, hz.max(1.0)) * scale, yaw, 0.0, 0.0)
        }
    };

    let obstacles: Vec<Obb> = match scene {
        NamedScene::PillarForest => {
            let mut v = Vec::new();
            for i in -2i32..=2 {
                for j in -1i32..=1 {
                    v.push(make(
                        i as f64 * 40.0 + j as f64 * 13.0,
                        j as f64 * 55.0,
                        0.0,
                        7.0,
                        7.0,
                        120.0,
                        0.35 * i as f64,
                    ));
                }
            }
            v
        }
        NamedScene::SlalomCorridor => vec![
            make(-45.0, 35.0, 0.0, 8.0, 85.0, 120.0, 0.0),
            make(0.0, -35.0, 0.0, 8.0, 85.0, 120.0, 0.0),
            make(45.0, 35.0, 0.0, 8.0, 85.0, 120.0, 0.0),
        ],
        NamedScene::BoxCanyon => vec![
            make(35.0, 0.0, 0.0, 6.0, 45.0, 120.0, 0.0),  // far wall
            make(0.0, 42.0, 0.0, 40.0, 6.0, 120.0, 0.0),  // top wall
            make(0.0, -42.0, 0.0, 40.0, 6.0, 120.0, 0.0), // bottom wall
        ],
        NamedScene::OpenMeadow => vec![
            make(-70.0, -70.0, 0.0, 10.0, 10.0, 30.0, 0.4),
            make(70.0, 70.0, 0.0, 10.0, 10.0, 30.0, -0.8),
            make(-70.0, 70.0, 0.0, 10.0, 10.0, 30.0, 1.1),
            make(70.0, -70.0, 0.0, 10.0, 10.0, 30.0, 0.2),
        ],
    };

    // Arms: the scene must not impale the base mount — drop obstacles
    // whose AABB reaches into the keep-out ball (the same guarantee the
    // random generator provides).
    let obstacles = if is_arm {
        let base = Vec3::new(mid, mid, 0.0);
        let keep_out = 12.0;
        obstacles
            .into_iter()
            .filter(|o| {
                let aabb = moped_geometry::Aabb::from_obb(o);
                let nearest = base.max(aabb.min()).min(aabb.max());
                (nearest - base).norm() >= keep_out
            })
            .collect()
    } else {
        obstacles
    };

    let mut scenario = Scenario {
        start: Config::zeros(robot.dof()),
        goal: Config::zeros(robot.dof()),
        robot,
        obstacles,
        seed: 0,
    };
    match endpoints(scene, &scenario.robot, mid, z_mid) {
        Some((start, goal)) => {
            scenario.start = start;
            scenario.goal = goal;
        }
        None => {
            // Arms: deterministic rejection sampling of free joint
            // configurations (fixed sweeps cannot be hand-verified
            // against every scene layout).
            use rand::SeedableRng;
            let mut rng = rand::rngs::StdRng::seed_from_u64(0xCA7A106);
            scenario.start = scenario.sample_free(&mut rng);
            scenario.goal = scenario.sample_free(&mut rng);
        }
    }
    debug_assert!(
        !scenario.config_collides(&scenario.start),
        "{}: start collides",
        scene.name()
    );
    debug_assert!(
        !scenario.config_collides(&scenario.goal),
        "{}: goal collides",
        scene.name()
    );
    scenario
}

fn endpoints(scene: NamedScene, robot: &Robot, mid: f64, z_mid: f64) -> Option<(Config, Config)> {
    match robot.model() {
        RobotModel::Mobile2d => {
            let (s, g) = planar_endpoints(scene, mid);
            Some((Config::new(&[s.0, s.1, 0.0]), Config::new(&[g.0, g.1, 0.0])))
        }
        RobotModel::Drone3d => {
            let (s, g) = planar_endpoints(scene, mid);
            Some((
                Config::new(&[s.0, s.1, z_mid, 0.0, 0.0, 0.0]),
                Config::new(&[g.0, g.1, z_mid, 0.0, 0.0, 0.0]),
            ))
        }
        _ => None,
    }
}

fn planar_endpoints(scene: NamedScene, mid: f64) -> ((f64, f64), (f64, f64)) {
    match scene {
        NamedScene::PillarForest | NamedScene::SlalomCorridor | NamedScene::OpenMeadow => {
            ((mid - 120.0, mid), (mid + 120.0, mid))
        }
        // Canyon: approach from the open (west) side; goal inside.
        NamedScene::BoxCanyon => ((mid - 120.0, mid), (mid + 15.0, mid)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_scene_builds_for_every_robot() {
        for scene in NamedScene::ALL {
            for robot in Robot::all_models() {
                let s = build(scene, robot);
                assert!(!s.obstacles.is_empty(), "{} has obstacles", scene.name());
                assert!(
                    !s.config_collides(&s.start),
                    "{} start collides for {}",
                    scene.name(),
                    s.robot.name()
                );
                assert!(
                    !s.config_collides(&s.goal),
                    "{} goal collides for {}",
                    scene.name(),
                    s.robot.name()
                );
            }
        }
    }

    #[test]
    fn planar_scenes_use_planar_obstacles() {
        for scene in NamedScene::ALL {
            let s = build(scene, Robot::mobile_2d());
            assert!(s.obstacles.iter().all(Obb::is_planar), "{}", scene.name());
        }
    }

    #[test]
    fn slalom_blocks_the_straight_line() {
        let s = build(NamedScene::SlalomCorridor, Robot::mobile_2d());
        // The direct segment must cross at least one wall.
        let blocked = (1..20).any(|i| {
            let q = s.start.lerp(&s.goal, i as f64 / 20.0);
            s.config_collides(&q)
        });
        assert!(blocked, "slalom must force a detour");
    }

    #[test]
    fn open_meadow_straight_line_is_free() {
        let s = build(NamedScene::OpenMeadow, Robot::mobile_2d());
        let clear = (0..=20).all(|i| {
            let q = s.start.lerp(&s.goal, i as f64 / 20.0);
            !s.config_collides(&q)
        });
        assert!(clear, "meadow center line must be free");
    }

    #[test]
    fn catalog_scenes_are_solvable() {
        // Feasibility at a modest budget for the free-flying robots.
        use crate::ScenarioParams;
        let _ = ScenarioParams::default(); // keep the import pattern uniform
        for scene in [NamedScene::PillarForest, NamedScene::SlalomCorridor] {
            let s = build(scene, Robot::mobile_2d());
            // A crude feasibility probe: the narrow-free-space sampler
            // must find free configurations on both sides of the scene.
            assert!(!s.config_collides(&s.start));
            assert!(!s.config_collides(&s.goal));
        }
    }

    #[test]
    fn from_name_round_trips() {
        for scene in NamedScene::ALL {
            assert_eq!(NamedScene::from_name(scene.name()), Some(scene));
        }
        assert_eq!(NamedScene::from_name("no-such-scene"), None);
    }

    #[test]
    fn names_are_unique() {
        let names: std::collections::HashSet<&str> =
            NamedScene::ALL.iter().map(|s| s.name()).collect();
        assert_eq!(names.len(), NamedScene::ALL.len());
    }
}
