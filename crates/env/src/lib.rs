//! Planning-scenario generation for the MOPED evaluation.
//!
//! §V of the paper evaluates in a simulated 300×300×300 workspace
//! (300×300 for the planar robot) with 8/16/32/48 randomly placed OBB
//! obstacles (3D sizes up to 30×30×50, 2D up to 30×30, random positions
//! and orientations), and 50 random planning tasks per environment
//! configuration with random collision-free start and goal configurations.
//! This crate generates those workloads deterministically from a seed, plus
//! the narrow-passage stress scene used to demonstrate the OBB-vs-AABB
//! path-quality gap (Fig 5).
//!
//! # Example
//!
//! ```
//! use moped_env::{Scenario, ScenarioParams};
//! use moped_robot::Robot;
//!
//! let scenario = Scenario::generate(Robot::drone_3d(), &ScenarioParams::with_obstacles(16), 7);
//! assert_eq!(scenario.obstacles.len(), 16);
//! assert!(!scenario.config_collides(&scenario.start));
//! assert!(!scenario.config_collides(&scenario.goal));
//! ```

#![deny(missing_docs)]

pub mod catalog;
pub mod dynamic;

use std::f64::consts::PI;

use moped_geometry::{sat, Config, Obb, OpCount, Vec3};
use moped_robot::{Robot, WORKSPACE_EXTENT};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The obstacle counts swept by the paper's evaluation.
pub const OBSTACLE_COUNTS: [usize; 4] = [8, 16, 32, 48];

/// Tunable generation parameters.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ScenarioParams {
    /// Number of random obstacles.
    pub obstacle_count: usize,
    /// Maximum obstacle half extents in X and Y (paper: 30/2 = 15).
    pub max_half_xy: f64,
    /// Maximum obstacle half extent in Z (paper: 50/2 = 25; ignored for
    /// planar scenes).
    pub max_half_z: f64,
    /// Minimum obstacle half extent on every axis.
    pub min_half: f64,
    /// Keep-out margin around start/goal poses when validating them.
    pub clearance: f64,
}

impl ScenarioParams {
    /// Paper-default parameters with the given obstacle count.
    pub fn with_obstacles(obstacle_count: usize) -> Self {
        ScenarioParams {
            obstacle_count,
            ..ScenarioParams::default()
        }
    }
}

impl Default for ScenarioParams {
    /// 16 obstacles with the §V size limits.
    fn default() -> Self {
        ScenarioParams {
            obstacle_count: 16,
            max_half_xy: 15.0,
            max_half_z: 25.0,
            min_half: 3.0,
            clearance: 1.0,
        }
    }
}

/// A complete planning task: a robot, an obstacle field, and validated
/// start/goal configurations.
#[derive(Clone, Debug)]
pub struct Scenario {
    /// The robot being planned for.
    pub robot: Robot,
    /// OBB obstacles (the format a perception front-end would deliver).
    pub obstacles: Vec<Obb>,
    /// Collision-free start configuration.
    pub start: Config,
    /// Collision-free goal configuration.
    pub goal: Config,
    /// The seed this task was generated from (reproducibility handle).
    pub seed: u64,
}

impl Scenario {
    /// Generates a random task: obstacles first, then rejection-sampled
    /// collision-free start and goal configurations. Deterministic in
    /// `(robot model, params, seed)`.
    ///
    /// # Panics
    ///
    /// Panics if a collision-free start/goal cannot be found within a
    /// generous rejection budget (pathologically dense scenes).
    pub fn generate(robot: Robot, params: &ScenarioParams, seed: u64) -> Scenario {
        let mut rng = StdRng::seed_from_u64(seed);
        let planar = robot.workspace_is_2d();
        let obstacles: Vec<Obb> = (0..params.obstacle_count)
            .map(|_| random_obstacle(&mut rng, params, planar, &robot))
            .collect();
        let mut scenario = Scenario {
            robot,
            obstacles,
            start: Config::zeros(1),
            goal: Config::zeros(1),
            seed,
        };
        scenario.start = scenario.sample_free(&mut rng);
        scenario.goal = scenario.sample_free(&mut rng);
        scenario
    }

    /// Generates the full §V task matrix for one robot: for each obstacle
    /// count in [`OBSTACLE_COUNTS`], `tasks_per_env` seeded scenarios.
    pub fn evaluation_suite(robot: &Robot, tasks_per_env: usize, base_seed: u64) -> Vec<Scenario> {
        let mut out = Vec::new();
        for (ei, &count) in OBSTACLE_COUNTS.iter().enumerate() {
            let params = ScenarioParams::with_obstacles(count);
            for t in 0..tasks_per_env {
                let seed = base_seed
                    .wrapping_mul(1_000_003)
                    .wrapping_add((ei * 1000 + t) as u64);
                out.push(Scenario::generate(robot.clone(), &params, seed));
            }
        }
        out
    }

    /// A narrow-passage stress scene (Fig 5): two long collinear walls
    /// tilted by `wall_tilt`, leaving a slot of `gap` units *along their
    /// shared diagonal* at the workspace center; start and goal sit on
    /// opposite sides of the wall line.
    ///
    /// The geometry is chosen so the loose AABB relaxation of each tilted
    /// wall over-covers its gap-side corner: whenever
    /// `gap < 2·thickness·tan(wall_tilt)` the two AABBs jointly seal the
    /// slot (false-positive collisions) while the exact OBBs leave it
    /// open — the path-quality / success-rate failure the paper
    /// illustrates. With `wall_tilt = 0` AABB and OBB coincide.
    ///
    /// # Panics
    ///
    /// Panics if `gap` is not positive.
    pub fn narrow_passage(robot: Robot, gap: f64, wall_tilt: f64) -> Scenario {
        assert!(gap > 0.0, "gap must be positive");
        let planar = robot.workspace_is_2d();
        let mid = WORKSPACE_EXTENT / 2.0;
        let center = Vec3::new(mid, mid, if planar { 0.0 } else { mid });
        let thickness = 10.0; // wall half-thickness
        let half_len = WORKSPACE_EXTENT; // long enough to block flanking
                                         // Walls run along u = (cos t, sin t); the slot lies between their
                                         // near ends, centered on `center`.
        let u = Vec3::new(wall_tilt.cos(), wall_tilt.sin(), 0.0);
        let offset = half_len + gap / 2.0;
        let make_wall = |sign: f64| -> Obb {
            let c = center + u * (sign * offset);
            if planar {
                Obb::planar(c, half_len, thickness, wall_tilt)
            } else {
                Obb::from_euler(
                    c,
                    Vec3::new(half_len, thickness, WORKSPACE_EXTENT),
                    wall_tilt,
                    0.0,
                    0.0,
                )
            }
        };
        let obstacles = vec![make_wall(-1.0), make_wall(1.0)];
        // Start/goal on opposite sides of the wall line, along the
        // perpendicular n = (-sin t, cos t).
        let n = Vec3::new(-wall_tilt.sin(), wall_tilt.cos(), 0.0);
        let s_pos = center - n * 80.0;
        let g_pos = center + n * 80.0;
        let (start, goal) = match robot.model() {
            moped_robot::RobotModel::Mobile2d => (
                Config::new(&[s_pos.x, s_pos.y, wall_tilt]),
                Config::new(&[g_pos.x, g_pos.y, wall_tilt]),
            ),
            moped_robot::RobotModel::Drone3d => (
                Config::new(&[s_pos.x, s_pos.y, mid, wall_tilt, 0.0, 0.0]),
                Config::new(&[g_pos.x, g_pos.y, mid, wall_tilt, 0.0, 0.0]),
            ),
            _ => {
                // Arms: swing from one side of the wall plane to the other.
                let mut s = vec![0.0; robot.dof()];
                let mut g = vec![0.0; robot.dof()];
                s[0] = -PI / 2.0 + 0.3;
                g[0] = PI / 2.0 - 0.3;
                (Config::new(&s), Config::new(&g))
            }
        };
        Scenario {
            robot,
            obstacles,
            start,
            goal,
            seed: 0,
        }
    }

    /// Precomputes the structure-of-arrays obstacle field consumed by the
    /// batched narrow phase: centers, half-extents, and rotation axes are
    /// extracted once here, so checkers built from the result never
    /// re-derive per-obstacle geometry on the hot path. Serving layers
    /// pay this once per environment snapshot and clone it per worker.
    pub fn prepared_obstacles(&self) -> sat::ObbSoa {
        sat::ObbSoa::build(self.obstacles.clone())
    }

    /// Exact (all-pairs OBB–OBB) collision test for a single
    /// configuration; used for start/goal validation and as the ground
    /// truth in tests. Planner-grade checking lives in `moped-collision`.
    pub fn config_collides(&self, q: &Config) -> bool {
        let mut scratch = OpCount::default();
        self.robot.body_obbs(q).iter().any(|body| {
            self.obstacles
                .iter()
                .any(|obs| sat::obb_obb(obs, body, &mut scratch))
        })
    }

    /// Rejection-samples a collision-free configuration.
    ///
    /// # Panics
    ///
    /// Panics after 100 000 failed attempts (the scene is effectively
    /// fully blocked).
    pub fn sample_free(&self, rng: &mut StdRng) -> Config {
        for _ in 0..100_000 {
            let unit: Vec<f64> = (0..self.robot.dof()).map(|_| rng.gen::<f64>()).collect();
            let q = self.robot.config_from_unit(&unit);
            if !self.config_collides(&q) {
                return q;
            }
        }
        panic!("could not sample a collision-free configuration in 100000 tries");
    }

    /// Samples an arbitrary (possibly colliding) configuration — the raw
    /// `x_rand` draw of each RRT\* round.
    pub fn sample_any(&self, rng: &mut StdRng) -> Config {
        let unit: Vec<f64> = (0..self.robot.dof()).map(|_| rng.gen::<f64>()).collect();
        self.robot.config_from_unit(&unit)
    }
}

fn random_obstacle(rng: &mut StdRng, params: &ScenarioParams, planar: bool, robot: &Robot) -> Obb {
    let hx = rng.gen_range(params.min_half..=params.max_half_xy);
    let hy = rng.gen_range(params.min_half..=params.max_half_xy);
    if planar {
        let cx = rng.gen_range(0.0..WORKSPACE_EXTENT);
        let cy = rng.gen_range(0.0..WORKSPACE_EXTENT);
        let theta = rng.gen_range(-PI..PI);
        return Obb::planar(Vec3::new(cx, cy, 0.0), hx, hy, theta);
    }
    let hz = rng.gen_range(params.min_half..=params.max_half_z);
    let is_arm = matches!(
        robot.model(),
        moped_robot::RobotModel::ViperX300
            | moped_robot::RobotModel::Rozum
            | moped_robot::RobotModel::XArm7
    );
    let mid = WORKSPACE_EXTENT / 2.0;
    let base = Vec3::new(mid, mid, 0.0);
    // Dense environments must never fully enclose the arm: obstacles are
    // redrawn if their AABB reaches into a keep-out ball around the base
    // (the mount itself plus its immediate surroundings stay clear, as
    // any physical deployment would guarantee).
    let keep_out = 35.0f64;
    loop {
        // Keep arm workloads honest: bias obstacle centers into the
        // robot's reachable shell so collision checks actually trigger.
        let center = if is_arm {
            let r = robot.reach() * 1.6;
            Vec3::new(
                rng.gen_range((mid - r).max(0.0)..(mid + r).min(WORKSPACE_EXTENT)),
                rng.gen_range((mid - r).max(0.0)..(mid + r).min(WORKSPACE_EXTENT)),
                rng.gen_range(0.0..(r * 1.2).min(WORKSPACE_EXTENT)),
            )
        } else {
            Vec3::new(
                rng.gen_range(0.0..WORKSPACE_EXTENT),
                rng.gen_range(0.0..WORKSPACE_EXTENT),
                rng.gen_range(0.0..WORKSPACE_EXTENT),
            )
        };
        let yaw = rng.gen_range(-PI..PI);
        let pitch = rng.gen_range(-PI / 2.0..PI / 2.0);
        let roll = rng.gen_range(-PI..PI);
        let obb = Obb::from_euler(center, Vec3::new(hx, hy, hz), yaw, pitch, roll);
        if is_arm {
            let aabb = moped_geometry::Aabb::from_obb(&obb);
            let nearest = base.max(aabb.min()).min(aabb.max());
            if (nearest - base).norm() < keep_out {
                continue;
            }
        }
        return obb;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic_in_seed() {
        let a = Scenario::generate(Robot::drone_3d(), &ScenarioParams::default(), 42);
        let b = Scenario::generate(Robot::drone_3d(), &ScenarioParams::default(), 42);
        assert_eq!(a.start, b.start);
        assert_eq!(a.goal, b.goal);
        assert_eq!(a.obstacles.len(), b.obstacles.len());
        for (x, y) in a.obstacles.iter().zip(&b.obstacles) {
            assert_eq!(x.center(), y.center());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = Scenario::generate(Robot::drone_3d(), &ScenarioParams::default(), 1);
        let b = Scenario::generate(Robot::drone_3d(), &ScenarioParams::default(), 2);
        assert_ne!(a.start, b.start);
    }

    #[test]
    fn start_goal_are_collision_free_for_all_models() {
        for robot in Robot::all_models() {
            let s = Scenario::generate(robot, &ScenarioParams::with_obstacles(16), 9);
            assert!(
                !s.config_collides(&s.start),
                "{} start collides",
                s.robot.name()
            );
            assert!(
                !s.config_collides(&s.goal),
                "{} goal collides",
                s.robot.name()
            );
        }
    }

    #[test]
    fn planar_robot_gets_planar_obstacles() {
        let s = Scenario::generate(Robot::mobile_2d(), &ScenarioParams::with_obstacles(8), 3);
        assert!(s.obstacles.iter().all(Obb::is_planar));
    }

    #[test]
    fn spatial_robot_gets_3d_obstacles() {
        let s = Scenario::generate(Robot::drone_3d(), &ScenarioParams::with_obstacles(8), 3);
        assert!(s.obstacles.iter().all(|o| !o.is_planar()));
    }

    #[test]
    fn obstacle_sizes_respect_limits() {
        let p = ScenarioParams::default();
        let s = Scenario::generate(Robot::drone_3d(), &p, 17);
        for o in &s.obstacles {
            let h = o.half_extents();
            assert!(h.x >= p.min_half && h.x <= p.max_half_xy);
            assert!(h.y >= p.min_half && h.y <= p.max_half_xy);
            assert!(h.z >= p.min_half && h.z <= p.max_half_z);
        }
    }

    #[test]
    fn evaluation_suite_covers_all_env_sizes() {
        let suite = Scenario::evaluation_suite(&Robot::mobile_2d(), 3, 5);
        assert_eq!(suite.len(), 4 * 3);
        let counts: Vec<usize> = suite.iter().map(|s| s.obstacles.len()).collect();
        for (i, &c) in OBSTACLE_COUNTS.iter().enumerate() {
            assert!(counts[i * 3..(i + 1) * 3].iter().all(|&x| x == c));
        }
    }

    #[test]
    fn narrow_passage_start_goal_free() {
        for tilt in [0.0, 0.4, 0.8] {
            let s = Scenario::narrow_passage(Robot::mobile_2d(), 30.0, tilt);
            assert_eq!(s.obstacles.len(), 2);
            assert!(!s.config_collides(&s.start), "tilt {tilt} start collides");
            assert!(!s.config_collides(&s.goal), "tilt {tilt} goal collides");
        }
    }

    #[test]
    fn narrow_passage_gap_is_exactly_passable() {
        // A pose centered in the slot, heading along the wall diagonal,
        // must be free under the exact OBB representation.
        for tilt in [0.0, 0.5, 0.8] {
            let s = Scenario::narrow_passage(Robot::mobile_2d(), 40.0, tilt);
            let q = Config::new(&[WORKSPACE_EXTENT / 2.0, WORKSPACE_EXTENT / 2.0, tilt]);
            assert!(!s.config_collides(&q), "tilt {tilt}: slot center not free");
        }
    }

    #[test]
    fn narrow_passage_aabb_relaxation_seals_tilted_slot() {
        use moped_geometry::Aabb;
        // With gap < 2·thickness·tan(tilt) the wall AABBs cover the slot
        // center — the Fig 5 false-positive mechanism.
        let tilt = 0.9f64;
        let gap = 15.0;
        assert!(gap < 2.0 * 10.0 * tilt.tan());
        let s = Scenario::narrow_passage(Robot::mobile_2d(), gap, tilt);
        let mid = Vec3::new(WORKSPACE_EXTENT / 2.0, WORKSPACE_EXTENT / 2.0, 0.0);
        let covered = s
            .obstacles
            .iter()
            .any(|o| Aabb::from_obb(o).contains_point(mid));
        assert!(covered, "AABB relaxation should seal the slot center");
        // While the exact OBBs leave it open — the robot crosses sideways
        // (long axis perpendicular to the walls) to fit the slot:
        let q = Config::new(&[mid.x, mid.y, tilt + PI / 2.0]);
        assert!(!s.config_collides(&q));
    }

    #[test]
    fn sample_any_is_in_bounds() {
        let s = Scenario::generate(Robot::xarm7(), &ScenarioParams::with_obstacles(8), 4);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..50 {
            let q = s.sample_any(&mut rng);
            assert!(s.robot.in_bounds(&q));
        }
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_gap_rejected() {
        let _ = Scenario::narrow_passage(Robot::mobile_2d(), 0.0, 0.0);
    }
}
