//! Exporters: Chrome-trace/Perfetto JSON for span events, plus a small
//! recursive-descent JSON well-formedness checker used by tests (the
//! workspace deliberately carries no serialization dependency).

use crate::recorder::SpanEvent;
use crate::TickSource;
use std::fmt::Write as _;

/// Renders span events as a Chrome trace (`chrome://tracing` /
/// Perfetto "JSON Array Format" wrapped in an object). Every span
/// becomes one complete event (`"ph":"X"`); `ts`/`dur` are microseconds
/// under [`TickSource::WallClock`] (ticks are nanoseconds there) and raw
/// tick values under [`TickSource::Logical`], where only ordering is
/// meaningful.
pub fn chrome_trace(events: &[SpanEvent]) -> String {
    let wall = crate::tick_source() == TickSource::WallClock;
    let scale = |t: u64| -> f64 {
        if wall {
            t as f64 / 1000.0
        } else {
            t as f64
        }
    };
    let mut out = String::from("{\"traceEvents\":[");
    for (i, e) in events.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let ts = scale(e.start);
        let dur = scale(e.end.saturating_sub(e.start));
        let _ = write!(
            out,
            "{{\"name\":\"{}\",\"cat\":\"moped\",\"ph\":\"X\",\"ts\":{ts:.3},\
             \"dur\":{dur:.3},\"pid\":1,\"tid\":{}}}",
            e.stage.name(),
            e.thread
        );
    }
    out.push_str("],\"displayTimeUnit\":\"ms\"}");
    out
}

/// Checks that `text` is one well-formed JSON value with nothing
/// trailing. This is a validator, not a parser: it builds no tree and
/// allocates nothing. Numbers follow the JSON grammar; strings accept
/// any escape after `\` except that `\u` requires four hex digits.
pub fn validate_json(text: &str) -> Result<(), String> {
    let bytes = text.as_bytes();
    let mut pos = 0;
    skip_ws(bytes, &mut pos);
    value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing content at byte {pos}"));
    }
    Ok(())
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn value(b: &[u8], pos: &mut usize) -> Result<(), String> {
    match b.get(*pos) {
        Some(b'{') => object(b, pos),
        Some(b'[') => array(b, pos),
        Some(b'"') => string(b, pos),
        Some(b't') => literal(b, pos, "true"),
        Some(b'f') => literal(b, pos, "false"),
        Some(b'n') => literal(b, pos, "null"),
        Some(c) if c.is_ascii_digit() || *c == b'-' => number(b, pos),
        Some(c) => Err(format!("unexpected byte {c:?} at {pos}", pos = *pos)),
        None => Err("unexpected end of input".to_string()),
    }
}

fn object(b: &[u8], pos: &mut usize) -> Result<(), String> {
    *pos += 1; // '{'
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(());
    }
    loop {
        skip_ws(b, pos);
        string(b, pos)?;
        skip_ws(b, pos);
        expect(b, pos, b':')?;
        skip_ws(b, pos);
        value(b, pos)?;
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(());
            }
            _ => return Err(format!("expected ',' or '}}' at byte {pos}", pos = *pos)),
        }
    }
}

fn array(b: &[u8], pos: &mut usize) -> Result<(), String> {
    *pos += 1; // '['
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(());
    }
    loop {
        skip_ws(b, pos);
        value(b, pos)?;
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(());
            }
            _ => return Err(format!("expected ',' or ']' at byte {pos}", pos = *pos)),
        }
    }
}

fn string(b: &[u8], pos: &mut usize) -> Result<(), String> {
    expect(b, pos, b'"')?;
    while let Some(&c) = b.get(*pos) {
        *pos += 1;
        match c {
            b'"' => return Ok(()),
            b'\\' => match b.get(*pos) {
                Some(b'u') => {
                    *pos += 1;
                    for _ in 0..4 {
                        match b.get(*pos) {
                            Some(h) if h.is_ascii_hexdigit() => *pos += 1,
                            _ => {
                                return Err(format!("bad \\u escape at byte {pos}", pos = *pos));
                            }
                        }
                    }
                }
                Some(_) => *pos += 1,
                None => return Err("unterminated escape".to_string()),
            },
            _ => {}
        }
    }
    Err("unterminated string".to_string())
}

fn number(b: &[u8], pos: &mut usize) -> Result<(), String> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let digits = |b: &[u8], pos: &mut usize| -> usize {
        let s = *pos;
        while b.get(*pos).is_some_and(u8::is_ascii_digit) {
            *pos += 1;
        }
        *pos - s
    };
    if digits(b, pos) == 0 {
        return Err(format!("bad number at byte {start}"));
    }
    if b.get(*pos) == Some(&b'.') {
        *pos += 1;
        if digits(b, pos) == 0 {
            return Err(format!("bad fraction at byte {start}"));
        }
    }
    if matches!(b.get(*pos), Some(b'e') | Some(b'E')) {
        *pos += 1;
        if matches!(b.get(*pos), Some(b'+') | Some(b'-')) {
            *pos += 1;
        }
        if digits(b, pos) == 0 {
            return Err(format!("bad exponent at byte {start}"));
        }
    }
    Ok(())
}

fn literal(b: &[u8], pos: &mut usize, word: &str) -> Result<(), String> {
    if b[*pos..].starts_with(word.as_bytes()) {
        *pos += word.len();
        Ok(())
    } else {
        Err(format!("bad literal at byte {pos}", pos = *pos))
    }
}

fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    if b.get(*pos) == Some(&c) {
        *pos += 1;
        Ok(())
    } else {
        Err(format!(
            "expected {:?} at byte {pos}",
            c as char,
            pos = *pos
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Stage;

    fn ev(stage: Stage, start: u64, end: u64, thread: u32) -> SpanEvent {
        SpanEvent {
            stage,
            start,
            end,
            thread,
        }
    }

    #[test]
    fn chrome_trace_is_well_formed_json() {
        let events = vec![
            ev(Stage::Round, 0, 100, 0),
            ev(Stage::Sample, 5, 10, 0),
            ev(Stage::Nearest, 12, 40, 1),
        ];
        let trace = chrome_trace(&events);
        validate_json(&trace).expect("trace must be valid JSON");
        assert!(trace.contains("\"ph\":\"X\""));
        assert!(trace.contains("\"name\":\"sample\""));
        assert!(trace.contains("\"tid\":1"));
    }

    #[test]
    fn chrome_trace_empty_is_valid() {
        let trace = chrome_trace(&[]);
        validate_json(&trace).expect("empty trace must be valid JSON");
        assert!(trace.contains("\"traceEvents\":[]"));
    }

    #[test]
    fn validator_accepts_valid_documents() {
        for doc in [
            "null",
            "true",
            " false ",
            "0",
            "-12.5e+3",
            "\"hi \\n \\u00e9\"",
            "[]",
            "[1,2,[3]]",
            "{}",
            "{\"a\":1,\"b\":{\"c\":[null,false]}}",
        ] {
            validate_json(doc).unwrap_or_else(|e| panic!("{doc:?} should parse: {e}"));
        }
    }

    #[test]
    fn validator_rejects_invalid_documents() {
        for doc in [
            "",
            "{",
            "}",
            "[1,]",
            "{\"a\":}",
            "{\"a\" 1}",
            "\"unterminated",
            "01x",
            "1 2",
            "nul",
            "{\"a\":1,}",
            "\"bad \\u12g4\"",
            "-",
            "1.",
            "1e",
        ] {
            assert!(validate_json(doc).is_err(), "{doc:?} should be rejected");
        }
    }
}
