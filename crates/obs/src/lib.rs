//! `moped-obs`: the observability subsystem — structured stage spans, a
//! per-stage profiler, a deterministic event journal, and exporters.
//!
//! MOPED's whole pitch is shifting RRT\*'s bottleneck profile (TSPS cuts
//! collision cost, STNS/SIAS cut neighbor-search cost), so "collision or
//! nearest-neighbor?" must be *measurable per workload*, not argued from
//! op counts alone. This crate gives every layer of the stack a shared,
//! low-overhead instrument:
//!
//! * **Spans** ([`span`]) — RAII enter/exit markers around the planner's
//!   inner-loop stages (sample, nearest, steer, broad/narrow-phase
//!   collision, rewire, insert), the hardware pipeline's speculation
//!   commit/repair, and the service layer's admission/queue/attempt/retry.
//!   Recording is per-thread (no locks on the hot path) into fixed-size
//!   stage aggregates plus a bounded ring of raw events.
//! * **Gate** ([`set_enabled`]) — tracing is compiled in but runtime-gated
//!   by a single atomic; the disabled path is one relaxed load and no
//!   heap allocation (asserted by the workspace's overhead tests).
//! * **Ticks** ([`set_tick_source`]) — spans timestamp with an injected
//!   monotonic tick counter. The default [`TickSource::Logical`] is a
//!   global atomic increment, so deterministic crates (see `moped-lint`'s
//!   `wall-clock` rule) never read a wall clock; applications that want
//!   real time opt into [`TickSource::WallClock`] (nanoseconds), which
//!   only this crate — deliberately outside the deterministic set —
//!   touches.
//! * **Profiler** ([`snapshot`] → [`Profile`]) — per-stage count /
//!   self-time / total-time / p50 / p99 tables with exclusive-time
//!   accounting, so nested spans (a SAT check inside a rewire) are never
//!   double-counted and the table sums to the instrumented total.
//! * **Journal** ([`Journal`]) — a deterministic record of every sample
//!   (with its drawn coordinates), accept, reject, rewire, and goal event
//!   plus the seed, serializable to a line format with bit-exact `f64`
//!   round-tripping; `moped-core` can replay one to reproduce a plan
//!   bit-identically.
//! * **Exporters** ([`export`]) — human text table, JSON, and
//!   Chrome-trace/Perfetto JSON (load at `chrome://tracing` or
//!   <https://ui.perfetto.dev>).
//!
//! See DESIGN.md §9 for the ring-buffer design, the tick-counter time
//! source, and the journal format; `examples/observe.rs` for an
//! end-to-end tour.

#![deny(missing_docs)]

pub mod counters;
pub mod export;
pub mod journal;
pub mod profile;
pub mod recorder;

pub use counters::{Counter, CounterValue};
pub use journal::{Journal, JournalEvent, RejectReason};
pub use profile::{Bottleneck, Profile, StageProfile};
pub use recorder::SpanEvent;

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
use std::sync::OnceLock;
use std::time::{Duration, Instant};

// ---------------------------------------------------------------------------
// Stages
// ---------------------------------------------------------------------------

/// The named stages of the planning stack, from the service layer down to
/// the SAT kernels. The discriminants index the per-thread aggregate
/// tables, so they must stay dense.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum Stage {
    /// One full RRT\* sampling round (envelope of the stages below).
    Round = 0,
    /// Drawing `x_rand` (goal-biased or uniform, or journal replay).
    Sample = 1,
    /// Nearest-neighbor query against the active index backend.
    Nearest = 2,
    /// SI-MBR tree descent inside a nearest query (MINDIST-pruned).
    MbrDescent = 3,
    /// Neighborhood query around `x_new` (exact range or SIAS leaf group).
    Neighborhood = 4,
    /// Steering `x_nearest` toward `x_rand`.
    Steer = 5,
    /// One pose collision query (FK + dispatch envelope).
    Collision = 6,
    /// Broad phase: R-tree AABB filter descent.
    BroadPhase = 7,
    /// Narrow phase: exact OBB–OBB SAT on filter survivors.
    NarrowPhase = 8,
    /// Refinement: parent choice and rewiring (collision checks nest).
    Rewire = 9,
    /// Index insertion of the accepted node (LCI or conventional).
    Insert = 10,
    /// Hardware model: speculative search + repair from the MNB.
    SpecRepair = 11,
    /// Hardware model: round commit (steer, insert, pipeline drain).
    SpecCommit = 12,
    /// Service: admission (validation + bounded-queue send).
    Admission = 13,
    /// Service: time a job sat in the queue before dequeue.
    QueueWait = 14,
    /// Service: one planning attempt under the panic guard.
    Attempt = 15,
    /// Service: retry backoff sleep after a caught panic.
    Retry = 16,
}

impl Stage {
    /// Every stage, in table order.
    pub const ALL: [Stage; 17] = [
        Stage::Round,
        Stage::Sample,
        Stage::Nearest,
        Stage::MbrDescent,
        Stage::Neighborhood,
        Stage::Steer,
        Stage::Collision,
        Stage::BroadPhase,
        Stage::NarrowPhase,
        Stage::Rewire,
        Stage::Insert,
        Stage::SpecRepair,
        Stage::SpecCommit,
        Stage::Admission,
        Stage::QueueWait,
        Stage::Attempt,
        Stage::Retry,
    ];

    /// Dense index into the aggregate tables.
    #[inline]
    pub fn idx(self) -> usize {
        self as usize
    }

    /// Stable kebab-case name used by every exporter.
    pub fn name(self) -> &'static str {
        match self {
            Stage::Round => "round",
            Stage::Sample => "sample",
            Stage::Nearest => "nearest",
            Stage::MbrDescent => "mbr-descent",
            Stage::Neighborhood => "neighborhood",
            Stage::Steer => "steer",
            Stage::Collision => "collision",
            Stage::BroadPhase => "broad-phase",
            Stage::NarrowPhase => "narrow-phase",
            Stage::Rewire => "rewire",
            Stage::Insert => "insert",
            Stage::SpecRepair => "spec-repair",
            Stage::SpecCommit => "spec-commit",
            Stage::Admission => "admission",
            Stage::QueueWait => "queue-wait",
            Stage::Attempt => "attempt",
            Stage::Retry => "retry",
        }
    }
}

// ---------------------------------------------------------------------------
// The gate
// ---------------------------------------------------------------------------

static ENABLED: AtomicBool = AtomicBool::new(false);

/// Whether tracing is currently recording. One relaxed load; this is the
/// *entire* cost a disabled span pays beyond constructing the guard on
/// the stack.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turns span recording on or off process-wide. Off by default.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

// ---------------------------------------------------------------------------
// The tick source
// ---------------------------------------------------------------------------

/// Where span timestamps come from.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TickSource {
    /// A global atomic counter incremented on every read: deterministic,
    /// wall-clock-free, and what the deterministic crates implicitly use.
    /// "Time" then means "tick-read order", which is enough for event
    /// ordering and span counting but not for latency attribution.
    Logical,
    /// Nanoseconds since the first read, from a monotonic clock. Only
    /// this crate reads the clock; callers in deterministic crates stay
    /// wall-clock-free at the token level (the `moped-lint` contract).
    WallClock,
}

static TICK_MODE: AtomicU8 = AtomicU8::new(0);
static LOGICAL_TICKS: AtomicU64 = AtomicU64::new(0);
static WALL_BASE: OnceLock<Instant> = OnceLock::new();

/// Selects the tick source. Defaults to [`TickSource::Logical`].
pub fn set_tick_source(source: TickSource) {
    let mode = match source {
        TickSource::Logical => 0,
        TickSource::WallClock => 1,
    };
    TICK_MODE.store(mode, Ordering::Relaxed);
}

/// The currently selected tick source.
pub fn tick_source() -> TickSource {
    match TICK_MODE.load(Ordering::Relaxed) {
        0 => TickSource::Logical,
        _ => TickSource::WallClock,
    }
}

/// Unit label for the current tick source ("ticks" or "ns").
pub fn tick_unit() -> &'static str {
    match tick_source() {
        TickSource::Logical => "ticks",
        TickSource::WallClock => "ns",
    }
}

/// Reads the monotonic tick counter (advances the logical counter when
/// that source is active).
#[inline]
pub fn now_ticks() -> u64 {
    match tick_source() {
        TickSource::Logical => LOGICAL_TICKS.fetch_add(1, Ordering::Relaxed) + 1,
        TickSource::WallClock => {
            let base = *WALL_BASE.get_or_init(Instant::now);
            base.elapsed().as_nanos() as u64
        }
    }
}

/// Converts a wall duration to ticks. Exact under
/// [`TickSource::WallClock`] (nanoseconds); under [`TickSource::Logical`]
/// the nanosecond count is still recorded but shares no unit with the
/// logical counter, so duration-based stages (queue wait) are only
/// meaningful for profiling under the wall-clock source.
pub fn duration_ticks(d: Duration) -> u64 {
    d.as_nanos().min(u64::MAX as u128) as u64
}

// ---------------------------------------------------------------------------
// Spans
// ---------------------------------------------------------------------------

/// RAII span guard: records `stage` from construction to drop. Obtain via
/// [`span`]. An unarmed guard (tracing disabled at construction) does
/// nothing on drop, even if tracing was enabled in between — enter/exit
/// stay paired.
#[must_use = "a span records its stage between construction and drop; binding it to `_` drops it immediately"]
pub struct Span {
    stage: Stage,
    armed: bool,
}

/// Opens a span for `stage` on the current thread. When tracing is
/// disabled this is a single atomic load and a two-byte stack value — no
/// allocation, no thread-local touch, no time read.
#[inline]
pub fn span(stage: Stage) -> Span {
    let armed = enabled();
    if armed {
        recorder::enter(stage);
    }
    Span { stage, armed }
}

impl Drop for Span {
    #[inline]
    fn drop(&mut self) {
        if self.armed {
            recorder::exit(self.stage);
        }
    }
}

/// Records a completed duration for `stage` without an enclosing span —
/// used where the interval crosses threads (queue wait is measured by
/// the dequeuing worker, not the submitter). No-op while disabled.
#[inline]
pub fn record_duration(stage: Stage, ticks: u64) {
    if enabled() {
        recorder::record_duration(stage, ticks);
    }
}

// ---------------------------------------------------------------------------
// Aggregation entry points (thin wrappers over the recorder/registry)
// ---------------------------------------------------------------------------

/// Merges the calling thread's recorder into the global registry. Workers
/// call this once per job so per-thread state never grows unbounded and
/// the registry converges without hot-path locking.
pub fn flush() {
    recorder::flush();
}

/// Flushes the calling thread, then returns the merged per-stage profile.
pub fn snapshot() -> Profile {
    recorder::flush();
    recorder::snapshot_profile()
}

/// Flushes the calling thread, then drains and returns the merged raw
/// span events (for the Chrome-trace exporter) plus the count of events
/// dropped to the ring/registry bounds.
pub fn take_events() -> (Vec<SpanEvent>, u64) {
    recorder::flush();
    recorder::take_events()
}

/// Clears the global registry, the calling thread's recorder, and the
/// software cache counters. Other threads' unflushed events survive until
/// their next flush; tests that need a clean slate serialize on one thread.
pub fn reset() {
    recorder::reset();
    counters::reset_counters();
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Tests in this crate share the process-global recorder; serialize
    /// them and restore defaults.
    fn with_clean_obs(f: impl FnOnce()) {
        use std::sync::Mutex;
        static GUARD: Mutex<()> = Mutex::new(());
        let _g = GUARD.lock().unwrap_or_else(|p| p.into_inner());
        reset();
        set_tick_source(TickSource::Logical);
        set_enabled(true);
        f();
        set_enabled(false);
        reset();
    }

    #[test]
    fn stage_indices_are_dense_and_names_unique() {
        for (i, s) in Stage::ALL.iter().enumerate() {
            assert_eq!(s.idx(), i);
            assert!(
                Stage::ALL.iter().skip(i + 1).all(|o| o.name() != s.name()),
                "duplicate stage name {}",
                s.name()
            );
        }
    }

    #[test]
    fn disabled_spans_record_nothing() {
        with_clean_obs(|| {
            set_enabled(false);
            for _ in 0..32 {
                let _s = span(Stage::Sample);
            }
            set_enabled(true);
            let p = snapshot();
            assert!(p.stage(Stage::Sample).is_none());
        });
    }

    #[test]
    fn nested_spans_split_self_time() {
        with_clean_obs(|| {
            {
                let _outer = span(Stage::Round);
                let _inner = span(Stage::Sample);
            }
            let p = snapshot();
            let round = p.stage(Stage::Round).expect("round recorded");
            let sample = p.stage(Stage::Sample).expect("sample recorded");
            assert_eq!(round.count, 1);
            assert_eq!(sample.count, 1);
            // Exclusive accounting: the child's total is carved out of the
            // parent's self time, so self ≤ total and the pieces add up.
            assert!(round.self_ticks <= round.total_ticks);
            assert_eq!(round.self_ticks + sample.total_ticks, round.total_ticks);
        });
    }

    #[test]
    fn same_stage_nesting_never_double_counts() {
        with_clean_obs(|| {
            {
                let _outer = span(Stage::Collision);
                let _inner = span(Stage::Collision);
            }
            let p = snapshot();
            let c = p.stage(Stage::Collision).expect("recorded");
            assert_eq!(c.count, 2);
            // Summed *self* time equals the outer span's total (the inner
            // interval is counted once), while summed total double-covers
            // the inner interval — so self stays strictly below total.
            assert!(c.self_ticks < c.total_ticks);
        });
    }

    #[test]
    fn logical_ticks_are_monotonic() {
        set_tick_source(TickSource::Logical);
        let a = now_ticks();
        let b = now_ticks();
        assert!(b > a);
    }

    #[test]
    fn wall_ticks_are_monotonic_nanos() {
        // Direct reads of the wall source, independent of the mode flag.
        let base = *WALL_BASE.get_or_init(Instant::now);
        let a = base.elapsed().as_nanos() as u64;
        let b = base.elapsed().as_nanos() as u64;
        assert!(b >= a);
        assert_eq!(duration_ticks(Duration::from_micros(3)), 3_000);
    }

    #[test]
    fn record_duration_feeds_the_profile() {
        with_clean_obs(|| {
            record_duration(Stage::QueueWait, 1_000);
            record_duration(Stage::QueueWait, 3_000);
            let p = snapshot();
            let qw = p.stage(Stage::QueueWait).expect("recorded");
            assert_eq!(qw.count, 2);
            assert_eq!(qw.total_ticks, 4_000);
            assert_eq!(qw.self_ticks, 4_000);
            assert_eq!(qw.max, 3_000);
        });
    }
}
