//! The stage profiler: merged per-stage tables with exclusive-time
//! accounting, plus the text and JSON renderers.

use crate::counters::CounterValue;
use crate::Stage;

/// Aggregated measurements for one stage.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StageProfile {
    /// The stage.
    pub stage: Stage,
    /// Closed spans recorded.
    pub count: u64,
    /// Exclusive (self) ticks: span time minus direct-child span time.
    /// Summing this column across stages never double-counts nesting.
    pub self_ticks: u64,
    /// Inclusive ticks (children included).
    pub total_ticks: u64,
    /// Smallest single-span self time.
    pub min: u64,
    /// Largest single-span self time.
    pub max: u64,
    /// Estimated median single-span self time (log2-bucket upper bound).
    pub p50: u64,
    /// Estimated 99th-percentile single-span self time.
    pub p99: u64,
}

impl StageProfile {
    /// Mean self ticks per span (zero when empty).
    pub fn mean(&self) -> u64 {
        self.self_ticks.checked_div(self.count).unwrap_or(0)
    }
}

/// The merged profile across all flushed threads.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Profile {
    /// Stages with at least one recorded span, in [`Stage::ALL`] order.
    pub stages: Vec<StageProfile>,
    /// Tick unit label at snapshot time ("ticks" or "ns").
    pub unit: &'static str,
    /// Software cache counters at snapshot time, in
    /// [`crate::Counter::ALL`] order (always all six, zeros included).
    pub counters: Vec<CounterValue>,
}

/// Quantized collision-vs-NN exclusive-time split (the Fig 3 axis),
/// in 1/256ths of instrumented self time.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Bottleneck {
    /// Collision-side share (`collision` + `broad-phase` + `narrow-phase`
    /// self ticks), quantized to 0..=256.
    pub collision_q256: u16,
    /// NN-side share (`nearest` + `mbr-descent` + `neighborhood` self
    /// ticks), quantized to 0..=256.
    pub nn_q256: u16,
    /// The denominator: total instrumented self ticks outside the round
    /// envelope (sample-size signal for the adapter's confidence gate).
    pub instrumented_ticks: u64,
}

impl Profile {
    /// The row for `stage`, if it recorded anything.
    pub fn stage(&self, stage: Stage) -> Option<&StageProfile> {
        self.stages.iter().find(|s| s.stage == stage)
    }

    /// Fraction of instrumented iteration time attributed to named
    /// sub-stages: `1 - round_self / round_total`, i.e. how little of the
    /// planner's per-round envelope is left *unattributed* after carving
    /// out every instrumented child. `None` when no rounds were recorded.
    ///
    /// This is the acceptance metric for "the stage table explains where
    /// iterations go": 0.95 means at most 5% of round time ran outside
    /// any named stage span.
    pub fn attributed_fraction(&self) -> Option<f64> {
        let round = self.stage(Stage::Round)?;
        if round.total_ticks == 0 {
            return None;
        }
        Some(1.0 - round.self_ticks as f64 / round.total_ticks as f64)
    }

    /// Sum of self ticks over every stage except the round envelope —
    /// the instrumented work the table distributes.
    pub fn instrumented_self_ticks(&self) -> u64 {
        self.stages
            .iter()
            .filter(|s| s.stage != Stage::Round)
            .map(|s| s.self_ticks)
            .sum()
    }

    /// The quantized collision-vs-NN bottleneck split of this profile —
    /// the stable accessor the autotuner's online adapter consumes.
    ///
    /// Fractions are integer 0..=256 (q/256 of instrumented self time);
    /// quantization makes downstream hysteresis decisions pure integer
    /// functions of the snapshot, immune to float formatting drift.
    /// `None` when nothing outside the round envelope was recorded.
    pub fn bottleneck(&self) -> Option<Bottleneck> {
        let denom = self.instrumented_self_ticks();
        if denom == 0 {
            return None;
        }
        let sum = |stages: &[Stage]| -> u64 {
            stages
                .iter()
                .filter_map(|s| self.stage(*s))
                .map(|s| s.self_ticks)
                .sum()
        };
        let collision = sum(&[Stage::Collision, Stage::BroadPhase, Stage::NarrowPhase]);
        let nn = sum(&[Stage::Nearest, Stage::MbrDescent, Stage::Neighborhood]);
        Some(Bottleneck {
            collision_q256: ((collision.min(denom) * 256) / denom) as u16,
            nn_q256: ((nn.min(denom) * 256) / denom) as u16,
            instrumented_ticks: denom,
        })
    }

    /// Renders the aligned human-readable table (one row per stage, a
    /// `self%` column over non-round self time, percentiles of per-span
    /// self time).
    pub fn render_text(&self) -> String {
        let denom = self.instrumented_self_ticks().max(1) as f64;
        let mut out = String::new();
        out.push_str(&format!(
            "{:<12} {:>10} {:>14} {:>14} {:>6} {:>10} {:>10} {:>10}  [{}]\n",
            "stage", "count", "self", "total", "self%", "p50", "p99", "max", self.unit
        ));
        for s in &self.stages {
            let share = if s.stage == Stage::Round {
                "-".to_string()
            } else {
                format!("{:.1}", 100.0 * s.self_ticks as f64 / denom)
            };
            out.push_str(&format!(
                "{:<12} {:>10} {:>14} {:>14} {:>6} {:>10} {:>10} {:>10}\n",
                s.stage.name(),
                s.count,
                s.self_ticks,
                s.total_ticks,
                share,
                s.p50,
                s.p99,
                s.max
            ));
        }
        if let Some(f) = self.attributed_fraction() {
            out.push_str(&format!(
                "attributed   {:.1}% of round time to named stages\n",
                100.0 * f
            ));
        }
        for c in self.counters.iter().filter(|c| c.value > 0) {
            out.push_str(&format!("counter      {:<18} {}\n", c.name, c.value));
        }
        out
    }

    /// Renders the machine-readable JSON object (hand-rolled: the
    /// workspace deliberately has no serialization dependency).
    pub fn to_json(&self) -> String {
        let rows = self
            .stages
            .iter()
            .map(|s| {
                format!(
                    "{{\"stage\":\"{}\",\"count\":{},\"self\":{},\"total\":{},\
                     \"min\":{},\"max\":{},\"p50\":{},\"p99\":{}}}",
                    s.stage.name(),
                    s.count,
                    s.self_ticks,
                    s.total_ticks,
                    s.min,
                    s.max,
                    s.p50,
                    s.p99
                )
            })
            .collect::<Vec<_>>()
            .join(",");
        let attributed = self
            .attributed_fraction()
            .map_or("null".to_string(), |f| format!("{f:.6}"));
        let counters = self
            .counters
            .iter()
            .map(|c| format!("{{\"name\":\"{}\",\"value\":{}}}", c.name, c.value))
            .collect::<Vec<_>>()
            .join(",");
        format!(
            "{{\"unit\":\"{}\",\"attributed_fraction\":{attributed},\
             \"stages\":[{rows}],\"counters\":[{counters}]}}",
            self.unit
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(stage: Stage, count: u64, self_ticks: u64, total_ticks: u64) -> StageProfile {
        StageProfile {
            stage,
            count,
            self_ticks,
            total_ticks,
            min: 1,
            max: self_ticks.max(1),
            p50: 1,
            p99: self_ticks.max(1),
        }
    }

    fn sample_profile() -> Profile {
        Profile {
            stages: vec![
                row(Stage::Round, 10, 50, 1000),
                row(Stage::Sample, 10, 100, 100),
                row(Stage::Nearest, 10, 450, 450),
                row(Stage::Collision, 40, 400, 400),
            ],
            unit: "ticks",
            counters: vec![CounterValue {
                name: "top-block-hit",
                value: 12,
            }],
        }
    }

    #[test]
    fn attribution_is_one_minus_round_self_share() {
        let p = sample_profile();
        let f = p.attributed_fraction().expect("round present");
        assert!((f - 0.95).abs() < 1e-12);
    }

    #[test]
    fn attribution_absent_without_round() {
        let p = Profile {
            stages: vec![row(Stage::Sample, 1, 5, 5)],
            unit: "ticks",
            counters: Vec::new(),
        };
        assert!(p.attributed_fraction().is_none());
    }

    #[test]
    fn text_table_lists_every_stage_and_the_attribution_line() {
        let p = sample_profile();
        let text = p.render_text();
        for s in [
            Stage::Round,
            Stage::Sample,
            Stage::Nearest,
            Stage::Collision,
        ] {
            assert!(text.contains(s.name()), "missing {}", s.name());
        }
        assert!(text.contains("attributed"));
        assert!(text.contains("95.0%"));
    }

    #[test]
    fn json_is_flat_and_contains_rows() {
        let p = sample_profile();
        let json = p.to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"stage\":\"nearest\""));
        assert!(json.contains("\"attributed_fraction\":0.95"));
        assert!(json.contains("\"name\":\"top-block-hit\",\"value\":12"));
        crate::export::validate_json(&json).expect("profile JSON must be well-formed");
    }

    #[test]
    fn bottleneck_quantizes_collision_vs_nn_split() {
        let p = sample_profile();
        // Instrumented self = 100 + 450 + 400 = 950; collision = 400, NN = 450.
        let b = p.bottleneck().expect("instrumented work present");
        assert_eq!(b.instrumented_ticks, 950);
        assert_eq!(b.collision_q256, ((400u64 * 256) / 950) as u16);
        assert_eq!(b.nn_q256, ((450u64 * 256) / 950) as u16);
        assert!(b.collision_q256 <= 256 && b.nn_q256 <= 256);
    }

    #[test]
    fn bottleneck_absent_when_nothing_instrumented() {
        let p = Profile {
            stages: vec![row(Stage::Round, 3, 30, 30)],
            unit: "ticks",
            counters: Vec::new(),
        };
        assert!(p.bottleneck().is_none());
    }

    #[test]
    fn mean_handles_empty() {
        assert_eq!(row(Stage::Sample, 0, 0, 0).mean(), 0);
        assert_eq!(row(Stage::Sample, 4, 100, 100).mean(), 25);
    }
}
