//! Monotonic hit/miss counters for the software cache hierarchy.
//!
//! The paper's multi-level caches (§IV-C) have software analogs on the
//! hot paths: the pinned top-of-tree block and the search-trace seed in
//! `simbr`, and the last-hit narrow-phase cache in `collision`. Each
//! bumps one of these process-global counters so cache effectiveness is
//! observable through the same facade as stage timing. Counters follow
//! the tracing gate: when [`crate::enabled`] is false a bump is a single
//! relaxed load and nothing else — no atomics written, no allocation.

use std::sync::atomic::{AtomicU64, Ordering};

/// One software cache counter.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u8)]
pub enum Counter {
    /// Best-first pop landed inside the pinned top-of-tree block
    /// (Top NS Cache analog).
    TopBlockHit = 0,
    /// Best-first pop fell outside the pinned block.
    TopBlockMiss = 1,
    /// Previous-round winner was still indexed and seeded the pruning
    /// bound (search-trace cache analog).
    TraceSeedHit = 2,
    /// No usable seed from the previous round.
    TraceSeedMiss = 3,
    /// Last-hit collision cache short-circuited the broad phase.
    LeafCacheHit = 4,
    /// Last-hit collision cache was consulted and missed.
    LeafCacheMiss = 5,
}

/// Number of counters (dense `repr(u8)` indices `0..COUNTER_COUNT`).
pub const COUNTER_COUNT: usize = 6;

impl Counter {
    /// Every counter, in index order.
    pub const ALL: [Counter; COUNTER_COUNT] = [
        Counter::TopBlockHit,
        Counter::TopBlockMiss,
        Counter::TraceSeedHit,
        Counter::TraceSeedMiss,
        Counter::LeafCacheHit,
        Counter::LeafCacheMiss,
    ];

    /// Dense array index.
    #[inline]
    pub fn idx(self) -> usize {
        self as usize
    }

    /// Stable kebab-case name used in text and JSON output.
    pub fn name(self) -> &'static str {
        match self {
            Counter::TopBlockHit => "top-block-hit",
            Counter::TopBlockMiss => "top-block-miss",
            Counter::TraceSeedHit => "trace-seed-hit",
            Counter::TraceSeedMiss => "trace-seed-miss",
            Counter::LeafCacheHit => "leaf-cache-hit",
            Counter::LeafCacheMiss => "leaf-cache-miss",
        }
    }
}

/// One counter's value at snapshot time.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CounterValue {
    /// The counter's stable name.
    pub name: &'static str,
    /// Monotonic count since the last [`crate::reset`].
    pub value: u64,
}

static COUNTS: [AtomicU64; COUNTER_COUNT] = [
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
];

/// Increments `c` when tracing is enabled; a relaxed-load no-op otherwise.
#[inline]
pub fn bump(c: Counter) {
    if crate::enabled() {
        COUNTS[c.idx()].fetch_add(1, Ordering::Relaxed);
    }
}

/// Current value of `c`.
pub fn value(c: Counter) -> u64 {
    COUNTS[c.idx()].load(Ordering::Relaxed)
}

/// All counters in index order (zero values included — the shape is
/// stable so JSON consumers can rely on every key being present).
pub fn snapshot_counters() -> Vec<CounterValue> {
    Counter::ALL
        .iter()
        .map(|&c| CounterValue {
            name: c.name(),
            value: value(c),
        })
        .collect()
}

/// Zeroes every counter (wired into [`crate::reset`]).
pub fn reset_counters() {
    for c in &COUNTS {
        c.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indices_are_dense_and_names_unique() {
        for (i, c) in Counter::ALL.iter().enumerate() {
            assert_eq!(c.idx(), i);
        }
        let mut names: Vec<_> = Counter::ALL.iter().map(|c| c.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), COUNTER_COUNT);
    }

    #[test]
    fn disabled_bumps_are_dropped() {
        // Serialized against other obs tests through the value check only:
        // with the gate off the stored value cannot move.
        crate::set_enabled(false);
        let before = value(Counter::TopBlockHit);
        bump(Counter::TopBlockHit);
        assert_eq!(value(Counter::TopBlockHit), before);
    }

    #[test]
    fn snapshot_has_stable_shape() {
        let snap = snapshot_counters();
        assert_eq!(snap.len(), COUNTER_COUNT);
        assert_eq!(snap[0].name, "top-block-hit");
        assert_eq!(snap[4].name, "leaf-cache-hit");
    }
}
