//! The deterministic event journal: a bit-exact record of one planning
//! run that can be serialized, diffed, and replayed.
//!
//! The planner records one [`JournalEvent::Sample`] per sampling round —
//! the drawn `x_rand` coordinates, goal-bias draws included — plus the
//! accept/reject/rewire/goal outcomes. Because everything downstream of
//! the sample stream (nearest, steering, collision, rewiring) is a pure
//! function of the scenario and the tree, replaying the sample stream
//! through `moped-core` reproduces the run bit-identically: same tree,
//! same node count, same path cost to the last mantissa bit.
//!
//! # Wire format
//!
//! Line-oriented text, one event per line, `f64`s as 16-hex-digit IEEE-754
//! bit patterns (exact round-trip by construction):
//!
//! ```text
//! moped-journal v1
//! seed 42
//! dof 3
//! s 4049000000000000 4035000000000000 3fe0000000000000
//! a 1 0 401199999999999a
//! r collision
//! w 3 5 4020000000000000
//! g 7 4059000000000000
//! end
//! ```

use std::fmt::Write as _;

/// Why a sampling round produced no new node.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RejectReason {
    /// Steering collapsed onto the nearest node (degenerate draw).
    Degenerate,
    /// The extension edge failed the collision check.
    Collision,
}

impl RejectReason {
    fn token(self) -> &'static str {
        match self {
            RejectReason::Degenerate => "degenerate",
            RejectReason::Collision => "collision",
        }
    }
}

/// One recorded planning event.
#[derive(Clone, Debug, PartialEq)]
pub enum JournalEvent {
    /// A drawn sample (`x_rand`), one per round.
    Sample {
        /// Configuration coordinates, `dof` values.
        coords: Vec<f64>,
    },
    /// A sample was accepted: node `node` entered the tree under
    /// `parent` at path cost `cost`.
    Accept {
        /// New node id.
        node: u64,
        /// Chosen parent id.
        parent: u64,
        /// Cost-to-come of the new node.
        cost: f64,
    },
    /// The round produced no node.
    Reject {
        /// Why.
        reason: RejectReason,
    },
    /// Rewiring moved `node` under `new_parent` at cost `cost`.
    Rewire {
        /// Rewired node id.
        node: u64,
        /// Its new parent id.
        new_parent: u64,
        /// Its new cost-to-come.
        cost: f64,
    },
    /// A new best goal connection through `node` with total path cost
    /// `total_cost`.
    Goal {
        /// Tree node the goal connects through.
        node: u64,
        /// Total start-to-goal cost at that moment.
        total_cost: f64,
    },
    /// Two exploration trees were bridged: node `from` (in the extending
    /// tree) met node `to` (in the connected tree). Recorded by the
    /// bidirectional and multi-tree engines; the single-tree RRT\* engine
    /// never emits it.
    Link {
        /// Bridge node in the tree that was being extended.
        from: u64,
        /// Bridge node in the tree that was connected to.
        to: u64,
    },
}

/// A planning run's event journal.
#[derive(Clone, Debug, PartialEq, Default)]
pub struct Journal {
    seed: u64,
    dof: usize,
    events: Vec<JournalEvent>,
}

impl Journal {
    /// Creates an empty journal for a run seeded with `seed` in a
    /// `dof`-dimensional configuration space.
    pub fn new(seed: u64, dof: usize) -> Self {
        Journal {
            seed,
            dof,
            events: Vec::new(),
        }
    }

    /// The recorded sampler seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The recorded configuration-space dimension.
    pub fn dof(&self) -> usize {
        self.dof
    }

    /// All recorded events, in order.
    pub fn events(&self) -> &[JournalEvent] {
        &self.events
    }

    /// Number of recorded sampling rounds (one `Sample` each).
    pub fn rounds(&self) -> usize {
        self.events
            .iter()
            .filter(|e| matches!(e, JournalEvent::Sample { .. }))
            .count()
    }

    /// Number of accepted samples (tree insertions).
    pub fn accepts(&self) -> usize {
        self.events
            .iter()
            .filter(|e| matches!(e, JournalEvent::Accept { .. }))
            .count()
    }

    /// Iterates the recorded sample coordinate rows, in round order —
    /// the stream a replaying planner consumes instead of its RNG.
    pub fn sample_rows(&self) -> impl Iterator<Item = &[f64]> {
        self.events.iter().filter_map(|e| match e {
            JournalEvent::Sample { coords } => Some(coords.as_slice()),
            _ => None,
        })
    }

    /// Records a drawn sample.
    pub fn record_sample(&mut self, coords: &[f64]) {
        debug_assert_eq!(coords.len(), self.dof, "sample dimension mismatch");
        self.events.push(JournalEvent::Sample {
            coords: coords.to_vec(),
        });
    }

    /// Records an accepted node.
    pub fn record_accept(&mut self, node: u64, parent: u64, cost: f64) {
        self.events
            .push(JournalEvent::Accept { node, parent, cost });
    }

    /// Records a rejected round.
    pub fn record_reject(&mut self, reason: RejectReason) {
        self.events.push(JournalEvent::Reject { reason });
    }

    /// Records a rewire.
    pub fn record_rewire(&mut self, node: u64, new_parent: u64, cost: f64) {
        self.events.push(JournalEvent::Rewire {
            node,
            new_parent,
            cost,
        });
    }

    /// Records an improved goal connection.
    pub fn record_goal(&mut self, node: u64, total_cost: f64) {
        self.events.push(JournalEvent::Goal { node, total_cost });
    }

    /// Records a tree-to-tree bridge (multi-tree / RRT-Connect engines).
    pub fn record_link(&mut self, from: u64, to: u64) {
        self.events.push(JournalEvent::Link { from, to });
    }

    /// Number of recorded tree bridges.
    pub fn links(&self) -> usize {
        self.events
            .iter()
            .filter(|e| matches!(e, JournalEvent::Link { .. }))
            .count()
    }

    /// Serializes to the line-oriented wire format (see module docs).
    pub fn serialize(&self) -> String {
        let mut out = String::new();
        out.push_str("moped-journal v1\n");
        let _ = writeln!(out, "seed {}", self.seed);
        let _ = writeln!(out, "dof {}", self.dof);
        for e in &self.events {
            match e {
                JournalEvent::Sample { coords } => {
                    out.push('s');
                    for c in coords {
                        let _ = write!(out, " {}", f64_hex(*c));
                    }
                    out.push('\n');
                }
                JournalEvent::Accept { node, parent, cost } => {
                    let _ = writeln!(out, "a {node} {parent} {}", f64_hex(*cost));
                }
                JournalEvent::Reject { reason } => {
                    let _ = writeln!(out, "r {}", reason.token());
                }
                JournalEvent::Rewire {
                    node,
                    new_parent,
                    cost,
                } => {
                    let _ = writeln!(out, "w {node} {new_parent} {}", f64_hex(*cost));
                }
                JournalEvent::Goal { node, total_cost } => {
                    let _ = writeln!(out, "g {node} {}", f64_hex(*total_cost));
                }
                JournalEvent::Link { from, to } => {
                    let _ = writeln!(out, "l {from} {to}");
                }
            }
        }
        out.push_str("end\n");
        out
    }

    /// Parses the wire format back into a journal. Errors carry the
    /// offending 1-based line number.
    pub fn parse(text: &str) -> Result<Journal, String> {
        let mut lines = text.lines().enumerate();
        let (_, header) = lines.next().ok_or("empty journal")?;
        if header.trim() != "moped-journal v1" {
            return Err(format!("bad header: {header:?}"));
        }
        let mut journal = Journal::default();
        let mut saw_end = false;
        for (idx, line) in lines {
            let lineno = idx + 1;
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            if saw_end {
                return Err(format!("line {lineno}: content after `end`"));
            }
            let mut parts = line.split_ascii_whitespace();
            let tag = parts.next().unwrap_or_default();
            let fields: Vec<&str> = parts.collect();
            match tag {
                "seed" => journal.seed = parse_u64(&fields, 0, lineno)?,
                "dof" => journal.dof = parse_u64(&fields, 0, lineno)? as usize,
                "s" => {
                    let coords = fields.iter().map(|f| hex_f64(f, lineno)).collect::<Result<
                        Vec<f64>,
                        String,
                    >>(
                    )?;
                    if journal.dof != 0 && coords.len() != journal.dof {
                        return Err(format!(
                            "line {lineno}: sample has {} coords, journal dof is {}",
                            coords.len(),
                            journal.dof
                        ));
                    }
                    journal.events.push(JournalEvent::Sample { coords });
                }
                "a" => journal.events.push(JournalEvent::Accept {
                    node: parse_u64(&fields, 0, lineno)?,
                    parent: parse_u64(&fields, 1, lineno)?,
                    cost: hex_f64(field(&fields, 2, lineno)?, lineno)?,
                }),
                "r" => {
                    let reason = match field(&fields, 0, lineno)? {
                        "degenerate" => RejectReason::Degenerate,
                        "collision" => RejectReason::Collision,
                        other => return Err(format!("line {lineno}: unknown reject {other:?}")),
                    };
                    journal.events.push(JournalEvent::Reject { reason });
                }
                "w" => journal.events.push(JournalEvent::Rewire {
                    node: parse_u64(&fields, 0, lineno)?,
                    new_parent: parse_u64(&fields, 1, lineno)?,
                    cost: hex_f64(field(&fields, 2, lineno)?, lineno)?,
                }),
                "g" => journal.events.push(JournalEvent::Goal {
                    node: parse_u64(&fields, 0, lineno)?,
                    total_cost: hex_f64(field(&fields, 1, lineno)?, lineno)?,
                }),
                "l" => journal.events.push(JournalEvent::Link {
                    from: parse_u64(&fields, 0, lineno)?,
                    to: parse_u64(&fields, 1, lineno)?,
                }),
                "end" => saw_end = true,
                other => return Err(format!("line {lineno}: unknown tag {other:?}")),
            }
        }
        if !saw_end {
            return Err("journal truncated: missing `end`".to_string());
        }
        Ok(journal)
    }
}

/// An `f64` as its 16-hex-digit IEEE-754 bit pattern (exact round-trip).
fn f64_hex(v: f64) -> String {
    format!("{:016x}", v.to_bits())
}

fn hex_f64(s: &str, lineno: usize) -> Result<f64, String> {
    u64::from_str_radix(s, 16)
        .map(f64::from_bits)
        .map_err(|e| format!("line {lineno}: bad f64 hex {s:?}: {e}"))
}

fn field<'a>(fields: &[&'a str], i: usize, lineno: usize) -> Result<&'a str, String> {
    fields
        .get(i)
        .copied()
        .ok_or_else(|| format!("line {lineno}: missing field {i}"))
}

fn parse_u64(fields: &[&str], i: usize, lineno: usize) -> Result<u64, String> {
    let f = field(fields, i, lineno)?;
    f.parse()
        .map_err(|e| format!("line {lineno}: bad integer {f:?}: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_journal() -> Journal {
        let mut j = Journal::new(17, 3);
        j.record_sample(&[1.5, -2.25, 0.1]);
        j.record_accept(1, 0, 2.75);
        j.record_sample(&[std::f64::consts::PI, 0.0, -0.0]);
        j.record_reject(RejectReason::Collision);
        j.record_sample(&[4.0, 4.0, 4.0]);
        j.record_reject(RejectReason::Degenerate);
        j.record_rewire(1, 2, 2.5);
        j.record_link(2, 1);
        j.record_goal(2, 9.125);
        j
    }

    #[test]
    fn round_trips_bit_exactly() {
        let j = sample_journal();
        let text = j.serialize();
        let back = Journal::parse(&text).expect("parse");
        assert_eq!(back.seed(), 17);
        assert_eq!(back.dof(), 3);
        assert_eq!(back.events().len(), j.events().len());
        assert_eq!(back, j);
        // Bit-exactness of the tricky values, explicitly.
        let rows: Vec<&[f64]> = back.sample_rows().collect();
        assert_eq!(rows[1][0].to_bits(), std::f64::consts::PI.to_bits());
        assert_eq!(rows[1][2].to_bits(), (-0.0f64).to_bits());
    }

    #[test]
    fn counts_rounds_and_accepts() {
        let j = sample_journal();
        assert_eq!(j.rounds(), 3);
        assert_eq!(j.accepts(), 1);
        assert_eq!(j.links(), 1);
        assert_eq!(j.sample_rows().count(), 3);
    }

    #[test]
    fn infinity_and_nan_round_trip() {
        let mut j = Journal::new(0, 1);
        j.record_sample(&[f64::INFINITY]);
        j.record_goal(0, f64::NAN);
        let back = Journal::parse(&j.serialize()).expect("parse");
        let rows: Vec<&[f64]> = back.sample_rows().collect();
        assert_eq!(rows[0][0], f64::INFINITY);
        let Some(JournalEvent::Goal { total_cost, .. }) = back.events().last() else {
            panic!("expected goal event");
        };
        assert_eq!(total_cost.to_bits(), f64::NAN.to_bits());
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(Journal::parse("").is_err());
        assert!(Journal::parse("not-a-journal\n").is_err());
        assert!(Journal::parse("moped-journal v1\nseed 1\ndof 1\n").is_err()); // no end
        assert!(Journal::parse("moped-journal v1\nq zzz\nend\n").is_err()); // bad tag
        assert!(Journal::parse("moped-journal v1\na 1\nend\n").is_err()); // short accept
        assert!(Journal::parse("moped-journal v1\nr sideways\nend\n").is_err());
        assert!(Journal::parse("moped-journal v1\ns zz\nend\n").is_err()); // bad hex
        assert!(Journal::parse("moped-journal v1\nend\nseed 3\n").is_err()); // after end
                                                                             // Dimension guard: dof 2 but a 1-coordinate sample.
        assert!(Journal::parse("moped-journal v1\ndof 2\ns 3ff0000000000000\nend\n").is_err());
    }

    #[test]
    fn empty_journal_round_trips() {
        let j = Journal::new(5, 7);
        let back = Journal::parse(&j.serialize()).expect("parse");
        assert_eq!(back, j);
        assert_eq!(back.rounds(), 0);
    }
}
