//! Per-thread span recording and the global merge registry.
//!
//! The hot path — [`enter`]/[`exit`] on an enabled span — touches only
//! thread-local state: a span stack for exclusive-time accounting, a
//! fixed table of per-stage aggregates, and a bounded ring of raw events
//! (oldest overwritten, drops counted). Nothing on that path takes a
//! lock or allocates after the thread's first recorded span. [`flush`]
//! folds a thread's state into the mutex-guarded global registry, which
//! is how worker pools converge: once per job, off the hot path.

use std::cell::RefCell;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Mutex;

use crate::profile::{Profile, StageProfile};
use crate::{now_ticks, tick_unit, Stage};

/// Stages tracked (dense `Stage::idx()` range).
const STAGES: usize = Stage::ALL.len();

/// Log2 histogram buckets for per-span self time: bucket `b` holds spans
/// whose self ticks `v` satisfy `floor(log2(max(v,1))) == b`. 44 buckets
/// cover ~17.5 trillion ticks (~4.8 hours at nanosecond resolution).
pub(crate) const HIST_BUCKETS: usize = 44;

/// Capacity of each thread's raw-event ring. At 32 bytes per event this
/// is 512 KiB per recording thread — deep enough for several full plans,
/// bounded so a long-running service cannot grow without limit.
pub const RING_CAPACITY: usize = 16_384;

/// Cap on raw events the global registry retains across flushes; beyond
/// it the oldest are dropped (and counted), mirroring the ring contract.
const REGISTRY_EVENT_CAP: usize = 1 << 20;

/// One completed span, as exported to the Chrome-trace writer.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SpanEvent {
    /// The stage recorded.
    pub stage: Stage,
    /// Tick at entry.
    pub start: u64,
    /// Tick at exit (`>= start`).
    pub end: u64,
    /// Recording thread's dense id (assigned at first recorded span).
    pub thread: u32,
}

/// An open span on the thread's stack.
struct Open {
    stage: Stage,
    start: u64,
    /// Total ticks consumed by already-closed direct children; subtracted
    /// at exit so the parent keeps only its exclusive (self) time.
    child_ticks: u64,
}

/// Per-stage running aggregate (self-time based, exact count/min/max/sum
/// plus a log2 histogram for percentile estimation).
#[derive(Clone)]
pub(crate) struct StageAccum {
    pub(crate) count: u64,
    pub(crate) self_ticks: u64,
    pub(crate) total_ticks: u64,
    pub(crate) min_self: u64,
    pub(crate) max_self: u64,
    pub(crate) hist: [u64; HIST_BUCKETS],
}

impl Default for StageAccum {
    fn default() -> Self {
        StageAccum {
            count: 0,
            self_ticks: 0,
            total_ticks: 0,
            min_self: u64::MAX,
            max_self: 0,
            hist: [0; HIST_BUCKETS],
        }
    }
}

impl StageAccum {
    fn record(&mut self, self_ticks: u64, total_ticks: u64) {
        self.count += 1;
        self.self_ticks += self_ticks;
        self.total_ticks += total_ticks;
        self.min_self = self.min_self.min(self_ticks);
        self.max_self = self.max_self.max(self_ticks);
        self.hist[bucket_of(self_ticks)] += 1;
    }

    fn merge(&mut self, other: &StageAccum) {
        if other.count == 0 {
            return;
        }
        self.count += other.count;
        self.self_ticks += other.self_ticks;
        self.total_ticks += other.total_ticks;
        self.min_self = self.min_self.min(other.min_self);
        self.max_self = self.max_self.max(other.max_self);
        for (a, b) in self.hist.iter_mut().zip(other.hist.iter()) {
            *a += b;
        }
    }

    /// Upper-bound estimate of the `q`-quantile of per-span self time:
    /// the upper edge of the first histogram bucket whose cumulative
    /// count reaches `ceil(q * count)`, clamped to the observed max.
    pub(crate) fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (b, c) in self.hist.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_upper(b).min(self.max_self);
            }
        }
        self.max_self
    }
}

/// Histogram bucket for a self-tick value: `floor(log2(max(v, 1)))`.
#[inline]
fn bucket_of(v: u64) -> usize {
    ((63 - v.max(1).leading_zeros()) as usize).min(HIST_BUCKETS - 1)
}

/// Inclusive upper edge of bucket `b` (`2^(b+1) - 1`).
fn bucket_upper(b: usize) -> u64 {
    if b + 1 >= 64 {
        u64::MAX
    } else {
        (1u64 << (b + 1)) - 1
    }
}

/// Everything one thread records between flushes.
struct ThreadRecorder {
    thread: u32,
    stack: Vec<Open>,
    accum: Vec<StageAccum>,
    ring: Vec<SpanEvent>,
    /// Next ring slot to (over)write once the ring is full.
    ring_head: usize,
    dropped: u64,
}

/// Dense thread ids for trace rows (stable across flushes, monotonic
/// across threads in first-span order).
static NEXT_THREAD_ID: AtomicU32 = AtomicU32::new(0);

impl ThreadRecorder {
    fn new() -> Self {
        ThreadRecorder {
            thread: NEXT_THREAD_ID.fetch_add(1, Ordering::Relaxed),
            stack: Vec::with_capacity(16),
            accum: vec![StageAccum::default(); STAGES],
            ring: Vec::with_capacity(RING_CAPACITY),
            ring_head: 0,
            dropped: 0,
        }
    }

    fn push_event(&mut self, ev: SpanEvent) {
        if self.ring.len() < RING_CAPACITY {
            self.ring.push(ev);
        } else {
            // Overwrite the oldest slot; the profiler aggregates stay
            // exact, only the raw timeline is bounded.
            self.ring[self.ring_head] = ev;
            self.ring_head = (self.ring_head + 1) % RING_CAPACITY;
            self.dropped += 1;
        }
    }
}

thread_local! {
    static RECORDER: RefCell<Option<ThreadRecorder>> = const { RefCell::new(None) };
}

/// Runs `f` on the thread's recorder, creating it on first use.
fn with_recorder(f: impl FnOnce(&mut ThreadRecorder)) {
    // `try_with` so spans during thread teardown degrade to no-ops
    // instead of panicking in a destructor.
    let _ = RECORDER.try_with(|cell| {
        let mut slot = cell.borrow_mut();
        f(slot.get_or_insert_with(ThreadRecorder::new));
    });
}

/// Opens `stage` on the current thread (called by `span` when enabled).
pub(crate) fn enter(stage: Stage) {
    let start = now_ticks();
    with_recorder(|rec| {
        rec.stack.push(Open {
            stage,
            start,
            child_ticks: 0,
        });
    });
}

/// Closes the innermost open span (called by `Span::drop` when armed).
pub(crate) fn exit(stage: Stage) {
    let end = now_ticks();
    with_recorder(|rec| {
        let Some(open) = rec.stack.pop() else {
            return; // unbalanced exit after a mid-span reset: drop it
        };
        debug_assert_eq!(open.stage, stage, "span enter/exit mismatch");
        let total = end.saturating_sub(open.start);
        let self_ticks = total.saturating_sub(open.child_ticks);
        if let Some(parent) = rec.stack.last_mut() {
            parent.child_ticks += total;
        }
        rec.accum[open.stage.idx()].record(self_ticks, total);
        let thread = rec.thread;
        rec.push_event(SpanEvent {
            stage: open.stage,
            start: open.start,
            end,
            thread,
        });
    });
}

/// Records a completed duration with no enclosing span (cross-thread
/// intervals such as queue wait). Synthesizes a timeline event ending at
/// the current tick.
pub(crate) fn record_duration(stage: Stage, ticks: u64) {
    let end = now_ticks();
    with_recorder(|rec| {
        rec.accum[stage.idx()].record(ticks, ticks);
        let thread = rec.thread;
        rec.push_event(SpanEvent {
            stage,
            start: end.saturating_sub(ticks),
            end,
            thread,
        });
    });
}

// ---------------------------------------------------------------------------
// The global registry
// ---------------------------------------------------------------------------

#[derive(Default)]
struct Registry {
    accum: Vec<StageAccum>,
    events: Vec<SpanEvent>,
    dropped: u64,
}

static REGISTRY: Mutex<Option<Registry>> = Mutex::new(None);

fn with_registry<R>(f: impl FnOnce(&mut Registry) -> R) -> R {
    let mut guard = REGISTRY.lock().unwrap_or_else(|p| p.into_inner());
    let reg = guard.get_or_insert_with(|| Registry {
        accum: vec![StageAccum::default(); STAGES],
        events: Vec::new(),
        dropped: 0,
    });
    f(reg)
}

/// Merges and clears the calling thread's recorder (open spans survive,
/// keeping enter/exit pairing intact across flushes).
pub(crate) fn flush() {
    with_recorder(|rec| {
        // Ring order: oldest first when it has wrapped.
        let mut events: Vec<SpanEvent> = Vec::with_capacity(rec.ring.len());
        if rec.ring.len() == RING_CAPACITY {
            events.extend_from_slice(&rec.ring[rec.ring_head..]);
            events.extend_from_slice(&rec.ring[..rec.ring_head]);
        } else {
            events.extend_from_slice(&rec.ring);
        }
        let dropped = rec.dropped;
        let accum = std::mem::replace(&mut rec.accum, vec![StageAccum::default(); STAGES]);
        rec.ring.clear();
        rec.ring_head = 0;
        rec.dropped = 0;
        with_registry(|reg| {
            for (into, from) in reg.accum.iter_mut().zip(accum.iter()) {
                into.merge(from);
            }
            reg.dropped += dropped;
            let overflow = (reg.events.len() + events.len()).saturating_sub(REGISTRY_EVENT_CAP);
            if overflow > 0 {
                let keep = reg.events.len().saturating_sub(overflow);
                reg.events.drain(..reg.events.len() - keep);
                reg.dropped += overflow as u64;
            }
            reg.events.extend_from_slice(&events);
        });
    });
}

/// Builds the merged per-stage profile from the registry.
pub(crate) fn snapshot_profile() -> Profile {
    with_registry(|reg| {
        let stages = Stage::ALL
            .iter()
            .filter(|s| reg.accum[s.idx()].count > 0)
            .map(|&s| {
                let a = &reg.accum[s.idx()];
                StageProfile {
                    stage: s,
                    count: a.count,
                    self_ticks: a.self_ticks,
                    total_ticks: a.total_ticks,
                    min: if a.count == 0 { 0 } else { a.min_self },
                    max: a.max_self,
                    p50: a.quantile(0.50),
                    p99: a.quantile(0.99),
                }
            })
            .collect();
        Profile {
            stages,
            unit: tick_unit(),
            counters: crate::counters::snapshot_counters(),
        }
    })
}

/// Drains the registry's raw events; returns `(events, dropped)`.
pub(crate) fn take_events() -> (Vec<SpanEvent>, u64) {
    with_registry(|reg| {
        let dropped = reg.dropped;
        reg.dropped = 0;
        (std::mem::take(&mut reg.events), dropped)
    })
}

/// Clears the registry and the calling thread's recorder (including its
/// open-span stack — callers reset only between, not inside, traced
/// regions).
pub(crate) fn reset() {
    with_recorder(|rec| {
        rec.stack.clear();
        rec.accum = vec![StageAccum::default(); STAGES];
        rec.ring.clear();
        rec.ring_head = 0;
        rec.dropped = 0;
    });
    let mut guard = REGISTRY.lock().unwrap_or_else(|p| p.into_inner());
    *guard = None;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn log2_buckets_cover_the_range() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 0);
        assert_eq!(bucket_of(2), 1);
        assert_eq!(bucket_of(3), 1);
        assert_eq!(bucket_of(4), 2);
        assert_eq!(bucket_of(u64::MAX), HIST_BUCKETS - 1);
        for b in 0..HIST_BUCKETS - 1 {
            assert!(bucket_upper(b) < bucket_upper(b + 1));
        }
    }

    #[test]
    fn quantiles_track_the_histogram() {
        let mut a = StageAccum::default();
        for v in [1u64, 1, 1, 1, 1, 1, 1, 1, 1, 1000] {
            a.record(v, v);
        }
        assert_eq!(a.count, 10);
        // p50 sits in the first bucket; p99 reaches the outlier's bucket
        // but is clamped to the observed max.
        assert!(a.quantile(0.5) <= 1);
        assert_eq!(a.quantile(0.99), 1000);
        assert_eq!(a.quantile(1.0), 1000);
    }

    #[test]
    fn empty_accum_quantile_is_zero() {
        let a = StageAccum::default();
        assert_eq!(a.quantile(0.5), 0);
    }

    #[test]
    fn merge_combines_counts_and_extrema() {
        let mut a = StageAccum::default();
        let mut b = StageAccum::default();
        a.record(5, 10);
        b.record(2, 2);
        b.record(100, 120);
        a.merge(&b);
        assert_eq!(a.count, 3);
        assert_eq!(a.self_ticks, 107);
        assert_eq!(a.total_ticks, 132);
        assert_eq!(a.min_self, 2);
        assert_eq!(a.max_self, 100);
        // Merging an empty accumulator changes nothing.
        let before = (a.count, a.self_ticks, a.min_self);
        a.merge(&StageAccum::default());
        assert_eq!((a.count, a.self_ticks, a.min_self), before);
    }
}
