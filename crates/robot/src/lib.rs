//! Robot models for the MOPED evaluation.
//!
//! The paper evaluates five robots spanning 3–7 degrees of freedom and
//! 1–7 body bounding boxes (§V):
//!
//! | Model       | DoF | Bodies | Configuration space                    |
//! |-------------|-----|--------|----------------------------------------|
//! | 2D Mobile   | 3   | 1 × 2D OBB | (x, y, θ)                          |
//! | 3D Drone    | 6   | 1 × 3D OBB | (x, y, z, yaw, pitch, roll)        |
//! | ViperX 300  | 5   | 3 × 3D OBB | five joint angles                  |
//! | ROZUM       | 6   | 4 × 3D OBB | six joint angles                   |
//! | xArm-7      | 7   | 7 × 3D OBB | seven joint angles                 |
//!
//! Arms are modelled as serial kinematic chains (joint axes and link
//! lengths approximated from public spec sheets, scaled into the 300-unit
//! evaluation workspace); the planner only ever sees the resulting body
//! OBBs, so what matters for the reproduced cost curves — DoF count and
//! body-box count — matches the paper exactly.
//!
//! # Example
//!
//! ```
//! use moped_robot::Robot;
//!
//! let arm = Robot::xarm7();
//! assert_eq!(arm.dof(), 7);
//! let home = arm.config_from_unit(&[0.5; 7]);
//! assert_eq!(arm.body_obbs(&home).len(), 7);
//! ```

#![deny(missing_docs)]

use std::f64::consts::PI;
use std::fmt;

use moped_geometry::{Config, Mat3, Obb, Vec3};

/// Side length of the simulated cubic workspace (§V: 300×300×300, or
/// 300×300 for the planar robot).
pub const WORKSPACE_EXTENT: f64 = 300.0;

/// The five evaluated robot models.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum RobotModel {
    /// 3-DoF planar mobile robot: two translations plus heading.
    Mobile2d,
    /// 6-DoF free-flying drone: three translations, three rotations.
    Drone3d,
    /// 5-DoF ViperX 300 manipulator (3 body boxes).
    ViperX300,
    /// 6-DoF ROZUM Pulse manipulator (4 body boxes).
    Rozum,
    /// 7-DoF UFACTORY xArm-7 manipulator (7 body boxes).
    XArm7,
}

impl fmt::Display for RobotModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            RobotModel::Mobile2d => "2D Mobile",
            RobotModel::Drone3d => "3D Drone",
            RobotModel::ViperX300 => "ViperX 300",
            RobotModel::Rozum => "ROZUM",
            RobotModel::XArm7 => "xArm-7",
        })
    }
}

/// One joint of a serial arm: rotation axis plus the rigid link that
/// follows it (links with zero length contribute no body box, letting a
/// model have fewer bodies than joints, as the ViperX does).
#[derive(Clone, Copy, Debug)]
struct JointSpec {
    /// 0 = X, 1 = Y, 2 = Z rotation axis in the parent frame.
    axis: usize,
    /// Link length along the local +X after the joint.
    link_len: f64,
    /// Link half-thickness (box half extents are `(len/2, w, w)`).
    half_width: f64,
}

/// A robot: its configuration space and the map from configurations to
/// workspace body boxes (forward kinematics).
#[derive(Clone, Debug)]
pub struct Robot {
    model: RobotModel,
    bounds: Vec<(f64, f64)>,
    joints: Vec<JointSpec>,
    base: Vec3,
    step: f64,
}

impl Robot {
    /// The 3-DoF planar mobile robot: an 8×5 footprint rectangle at
    /// `(x, y)` with heading `θ`.
    pub fn mobile_2d() -> Robot {
        Robot {
            model: RobotModel::Mobile2d,
            bounds: vec![(0.0, WORKSPACE_EXTENT), (0.0, WORKSPACE_EXTENT), (-PI, PI)],
            joints: Vec::new(),
            base: Vec3::ZERO,
            step: 8.0,
        }
    }

    /// The 6-DoF drone: a 6×6×2 body box with full attitude freedom
    /// (pitch limited to ±π/2 to keep yaw-pitch-roll unambiguous).
    pub fn drone_3d() -> Robot {
        Robot {
            model: RobotModel::Drone3d,
            bounds: vec![
                (0.0, WORKSPACE_EXTENT),
                (0.0, WORKSPACE_EXTENT),
                (0.0, WORKSPACE_EXTENT),
                (-PI, PI),
                (-PI / 2.0, PI / 2.0),
                (-PI, PI),
            ],
            joints: Vec::new(),
            base: Vec3::ZERO,
            step: 8.0,
        }
    }

    /// The 5-DoF ViperX 300 arm: waist / shoulder / elbow / wrist-angle /
    /// wrist-rotate joints, three link boxes, ~115-unit reach from a base
    /// at the workspace-floor center.
    pub fn viperx_300() -> Robot {
        Robot {
            model: RobotModel::ViperX300,
            bounds: vec![(-PI, PI); 5],
            joints: vec![
                JointSpec {
                    axis: 2,
                    link_len: 0.0,
                    half_width: 0.0,
                }, // waist
                JointSpec {
                    axis: 1,
                    link_len: 45.0,
                    half_width: 4.0,
                }, // shoulder→elbow
                JointSpec {
                    axis: 1,
                    link_len: 40.0,
                    half_width: 3.5,
                }, // elbow→wrist
                JointSpec {
                    axis: 1,
                    link_len: 30.0,
                    half_width: 3.0,
                }, // wrist→gripper
                JointSpec {
                    axis: 0,
                    link_len: 0.0,
                    half_width: 0.0,
                }, // wrist rotate
            ],
            base: Vec3::new(WORKSPACE_EXTENT / 2.0, WORKSPACE_EXTENT / 2.0, 0.0),
            step: 0.35,
        }
    }

    /// The 6-DoF ROZUM Pulse arm: four link boxes, ~115-unit reach.
    pub fn rozum() -> Robot {
        Robot {
            model: RobotModel::Rozum,
            bounds: vec![(-PI, PI); 6],
            joints: vec![
                JointSpec {
                    axis: 2,
                    link_len: 0.0,
                    half_width: 0.0,
                },
                JointSpec {
                    axis: 1,
                    link_len: 40.0,
                    half_width: 4.0,
                },
                JointSpec {
                    axis: 1,
                    link_len: 35.0,
                    half_width: 3.5,
                },
                JointSpec {
                    axis: 1,
                    link_len: 25.0,
                    half_width: 3.0,
                },
                JointSpec {
                    axis: 0,
                    link_len: 15.0,
                    half_width: 2.5,
                },
                JointSpec {
                    axis: 2,
                    link_len: 0.0,
                    half_width: 0.0,
                },
            ],
            base: Vec3::new(WORKSPACE_EXTENT / 2.0, WORKSPACE_EXTENT / 2.0, 0.0),
            step: 0.35,
        }
    }

    /// The 7-DoF xArm-7: seven link boxes, ~127-unit reach.
    pub fn xarm7() -> Robot {
        Robot {
            model: RobotModel::XArm7,
            bounds: vec![(-PI, PI); 7],
            joints: vec![
                JointSpec {
                    axis: 2,
                    link_len: 20.0,
                    half_width: 4.0,
                },
                JointSpec {
                    axis: 1,
                    link_len: 25.0,
                    half_width: 4.0,
                },
                JointSpec {
                    axis: 2,
                    link_len: 20.0,
                    half_width: 3.5,
                },
                JointSpec {
                    axis: 1,
                    link_len: 25.0,
                    half_width: 3.5,
                },
                JointSpec {
                    axis: 2,
                    link_len: 15.0,
                    half_width: 3.0,
                },
                JointSpec {
                    axis: 1,
                    link_len: 12.0,
                    half_width: 2.5,
                },
                JointSpec {
                    axis: 0,
                    link_len: 10.0,
                    half_width: 2.0,
                },
            ],
            base: Vec3::new(WORKSPACE_EXTENT / 2.0, WORKSPACE_EXTENT / 2.0, 0.0),
            step: 0.35,
        }
    }

    /// Constructs the model by enum tag.
    pub fn from_model(model: RobotModel) -> Robot {
        match model {
            RobotModel::Mobile2d => Robot::mobile_2d(),
            RobotModel::Drone3d => Robot::drone_3d(),
            RobotModel::ViperX300 => Robot::viperx_300(),
            RobotModel::Rozum => Robot::rozum(),
            RobotModel::XArm7 => Robot::xarm7(),
        }
    }

    /// All five evaluation robots, in the paper's presentation order.
    pub fn all_models() -> Vec<Robot> {
        vec![
            Robot::mobile_2d(),
            Robot::drone_3d(),
            Robot::viperx_300(),
            Robot::rozum(),
            Robot::xarm7(),
        ]
    }

    /// Which model this robot is.
    pub fn model(&self) -> RobotModel {
        self.model
    }

    /// Human-readable model name.
    pub fn name(&self) -> String {
        self.model.to_string()
    }

    /// Degrees of freedom (configuration-space dimension).
    pub fn dof(&self) -> usize {
        self.bounds.len()
    }

    /// Number of body bounding boxes produced by forward kinematics.
    pub fn num_bodies(&self) -> usize {
        match self.model {
            RobotModel::Mobile2d | RobotModel::Drone3d => 1,
            _ => self.joints.iter().filter(|j| j.link_len > 0.0).count(),
        }
    }

    /// Returns `true` for the planar workload (2D workspace, 2D SAT).
    pub fn workspace_is_2d(&self) -> bool {
        self.model == RobotModel::Mobile2d
    }

    /// Per-axis configuration bounds `(lo, hi)`.
    pub fn config_bounds(&self) -> &[(f64, f64)] {
        &self.bounds
    }

    /// Default steering step size in configuration-space units (the
    /// per-sample movement limit the steering operation enforces).
    pub fn steering_step(&self) -> f64 {
        self.step
    }

    /// Maps a unit-cube sample (each component in `[0, 1]`) to a
    /// configuration within bounds — the bridge between any RNG (LFSR or
    /// software) and the configuration space.
    ///
    /// # Panics
    ///
    /// Panics if `unit.len() != self.dof()`.
    pub fn config_from_unit(&self, unit: &[f64]) -> Config {
        assert_eq!(unit.len(), self.dof(), "unit sample has wrong dimension");
        let coords: Vec<f64> = unit
            .iter()
            .zip(&self.bounds)
            .map(|(u, (lo, hi))| lo + u.clamp(0.0, 1.0) * (hi - lo))
            .collect();
        Config::new(&coords)
    }

    /// Clamps a configuration into bounds component-wise.
    pub fn clamp_config(&self, q: &Config) -> Config {
        let coords: Vec<f64> = q
            .as_slice()
            .iter()
            .zip(&self.bounds)
            .map(|(v, (lo, hi))| v.clamp(*lo, *hi))
            .collect();
        Config::new(&coords)
    }

    /// Returns `true` if every coordinate lies within bounds.
    pub fn in_bounds(&self, q: &Config) -> bool {
        q.dim() == self.dof()
            && q.as_slice()
                .iter()
                .zip(&self.bounds)
                .all(|(v, (lo, hi))| *v >= *lo - 1e-9 && *v <= *hi + 1e-9)
    }

    /// Forward kinematics: the body OBBs occupied at configuration `q`.
    ///
    /// * Mobile: one planar OBB at `(x, y)` with heading `θ`.
    /// * Drone: one 3D OBB at `(x, y, z)` with yaw-pitch-roll attitude.
    /// * Arms: one OBB per non-degenerate link of the serial chain rooted
    ///   at the model's base.
    ///
    /// # Panics
    ///
    /// Panics if `q.dim() != self.dof()`.
    pub fn body_obbs(&self, q: &Config) -> Vec<Obb> {
        let mut out = Vec::with_capacity(self.num_bodies());
        self.body_obbs_into(q, &mut out);
        out
    }

    /// Allocation-free forward kinematics: clears `out` and fills it with
    /// the body OBBs at `q`. Planner collision loops call this once per
    /// checked pose, so reusing the buffer matters.
    ///
    /// # Panics
    ///
    /// Panics if `q.dim() != self.dof()`.
    pub fn body_obbs_into(&self, q: &Config, out: &mut Vec<Obb>) {
        assert_eq!(q.dim(), self.dof(), "configuration has wrong dimension");
        out.clear();
        match self.model {
            RobotModel::Mobile2d => {
                out.push(Obb::planar(Vec3::new(q[0], q[1], 0.0), 8.0, 5.0, q[2]));
            }
            RobotModel::Drone3d => {
                out.push(Obb::new(
                    Vec3::new(q[0], q[1], q[2]),
                    Vec3::new(6.0, 6.0, 2.0),
                    Mat3::from_euler(q[3], q[4], q[5]),
                ));
            }
            _ => self.arm_fk(q, out),
        }
    }

    fn arm_fk(&self, q: &Config, bodies: &mut Vec<Obb>) {
        let mut pos = self.base;
        let mut rot = Mat3::IDENTITY;
        for (i, joint) in self.joints.iter().enumerate() {
            let r = match joint.axis {
                0 => Mat3::rotation_x(q[i]),
                1 => Mat3::rotation_y(q[i]),
                _ => Mat3::rotation_z(q[i]),
            };
            rot = rot * r;
            if joint.link_len > 0.0 {
                let dir = rot.col(0);
                let center = pos + dir * (joint.link_len / 2.0);
                bodies.push(Obb::new(
                    center,
                    Vec3::new(joint.link_len / 2.0, joint.half_width, joint.half_width),
                    rot,
                ));
                pos += dir * joint.link_len;
            }
        }
    }

    /// End-effector position for arms / body center otherwise — handy for
    /// sanity-checking kinematics and for goal-region definitions.
    pub fn end_effector(&self, q: &Config) -> Vec3 {
        match self.model {
            RobotModel::Mobile2d => Vec3::new(q[0], q[1], 0.0),
            RobotModel::Drone3d => Vec3::new(q[0], q[1], q[2]),
            _ => {
                let mut pos = self.base;
                let mut rot = Mat3::IDENTITY;
                for (i, joint) in self.joints.iter().enumerate() {
                    let r = match joint.axis {
                        0 => Mat3::rotation_x(q[i]),
                        1 => Mat3::rotation_y(q[i]),
                        _ => Mat3::rotation_z(q[i]),
                    };
                    rot = rot * r;
                    pos += rot.col(0) * joint.link_len;
                }
                pos
            }
        }
    }

    /// Maximum reach from the base (sum of link lengths), or the body
    /// diagonal for free-flying robots.
    pub fn reach(&self) -> f64 {
        match self.model {
            RobotModel::Mobile2d => (8.0f64 * 8.0 + 5.0 * 5.0).sqrt(),
            RobotModel::Drone3d => (6.0f64 * 6.0 + 6.0 * 6.0 + 2.0 * 2.0).sqrt(),
            _ => self.joints.iter().map(|j| j.link_len).sum(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn model_table_matches_paper() {
        let expect = [
            (RobotModel::Mobile2d, 3, 1),
            (RobotModel::Drone3d, 6, 1),
            (RobotModel::ViperX300, 5, 3),
            (RobotModel::Rozum, 6, 4),
            (RobotModel::XArm7, 7, 7),
        ];
        for (model, dof, bodies) in expect {
            let r = Robot::from_model(model);
            assert_eq!(r.dof(), dof, "{model} DoF");
            assert_eq!(r.num_bodies(), bodies, "{model} bodies");
            let q = r.config_from_unit(&vec![0.5; dof]);
            assert_eq!(r.body_obbs(&q).len(), bodies, "{model} FK bodies");
        }
    }

    #[test]
    fn all_models_returns_five() {
        assert_eq!(Robot::all_models().len(), 5);
    }

    #[test]
    fn mobile_body_is_planar() {
        let r = Robot::mobile_2d();
        let q = Config::new(&[100.0, 120.0, 0.7]);
        let bodies = r.body_obbs(&q);
        assert!(bodies[0].is_planar());
        assert_eq!(bodies[0].center(), Vec3::new(100.0, 120.0, 0.0));
        assert!(r.workspace_is_2d());
    }

    #[test]
    fn drone_body_follows_attitude() {
        let r = Robot::drone_3d();
        let q = Config::new(&[10.0, 20.0, 30.0, 0.5, 0.2, -0.3]);
        let bodies = r.body_obbs(&q);
        assert_eq!(bodies[0].center(), Vec3::new(10.0, 20.0, 30.0));
        assert!(bodies[0].rotation().is_rotation(1e-9));
        assert!(!r.workspace_is_2d());
    }

    #[test]
    fn arm_links_form_connected_chain() {
        for r in [Robot::viperx_300(), Robot::rozum(), Robot::xarm7()] {
            let q = r.config_from_unit(&vec![0.3; r.dof()]);
            let bodies = r.body_obbs(&q);
            // Consecutive link boxes must touch: the end of link i is the
            // start of link i+1.
            for w in bodies.windows(2) {
                let end_of_prev = w[0].center() + w[0].rotation().col(0) * w[0].half_extents().x;
                let start_of_next = w[1].center() - w[1].rotation().col(0) * w[1].half_extents().x;
                assert!(
                    (end_of_prev - start_of_next).norm() < 1e-9,
                    "{}: chain gap {:?}",
                    r.name(),
                    (end_of_prev - start_of_next).norm()
                );
            }
        }
    }

    #[test]
    fn end_effector_within_reach() {
        for r in Robot::all_models() {
            for t in [0.0, 0.25, 0.5, 0.75, 1.0] {
                let q = r.config_from_unit(&vec![t; r.dof()]);
                let ee = r.end_effector(&q);
                if !matches!(r.model(), RobotModel::Mobile2d | RobotModel::Drone3d) {
                    let base = Vec3::new(WORKSPACE_EXTENT / 2.0, WORKSPACE_EXTENT / 2.0, 0.0);
                    assert!(
                        (ee - base).norm() <= r.reach() + 1e-9,
                        "{} exceeded reach",
                        r.name()
                    );
                }
            }
        }
    }

    #[test]
    fn zero_config_arm_points_along_x() {
        let r = Robot::xarm7();
        let q = Config::zeros(7);
        let ee = r.end_effector(&q);
        let base = Vec3::new(WORKSPACE_EXTENT / 2.0, WORKSPACE_EXTENT / 2.0, 0.0);
        assert!((ee - (base + Vec3::X * r.reach())).norm() < 1e-9);
    }

    #[test]
    fn config_from_unit_respects_bounds() {
        for r in Robot::all_models() {
            let lo = r.config_from_unit(&vec![0.0; r.dof()]);
            let hi = r.config_from_unit(&vec![1.0; r.dof()]);
            for i in 0..r.dof() {
                let (blo, bhi) = r.config_bounds()[i];
                assert_eq!(lo[i], blo);
                assert_eq!(hi[i], bhi);
            }
            assert!(r.in_bounds(&lo) && r.in_bounds(&hi));
        }
    }

    #[test]
    fn clamp_pulls_out_of_range_values_in() {
        let r = Robot::mobile_2d();
        let q = Config::new(&[-50.0, 500.0, 10.0]);
        let c = r.clamp_config(&q);
        assert!(r.in_bounds(&c));
        assert_eq!(c[0], 0.0);
        assert_eq!(c[1], WORKSPACE_EXTENT);
    }

    #[test]
    fn fk_is_continuous_in_q() {
        // A small joint perturbation moves every body center by a small
        // amount — guards against axis/order bugs in the chain math.
        for r in [Robot::viperx_300(), Robot::rozum(), Robot::xarm7()] {
            let q0 = r.config_from_unit(&vec![0.4; r.dof()]);
            let mut q1 = q0;
            q1.as_mut_slice()[1] += 1e-4;
            let b0 = r.body_obbs(&q0);
            let b1 = r.body_obbs(&q1);
            for (a, b) in b0.iter().zip(&b1) {
                assert!((a.center() - b.center()).norm() < 0.1);
            }
        }
    }

    #[test]
    #[should_panic(expected = "wrong dimension")]
    fn wrong_dim_config_rejected() {
        let r = Robot::xarm7();
        let _ = r.body_obbs(&Config::zeros(3));
    }

    #[test]
    fn steering_steps_are_positive() {
        for r in Robot::all_models() {
            assert!(r.steering_step() > 0.0);
        }
    }

    #[test]
    fn display_names_are_distinct() {
        let names: std::collections::HashSet<String> =
            Robot::all_models().iter().map(|r| r.name()).collect();
        assert_eq!(names.len(), 5);
    }
}
