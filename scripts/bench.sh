#!/usr/bin/env bash
# Machine-readable benchmarks. Three binaries, three JSON artifacts:
#
#   planner_bench — old-vs-new hot-path engines on full 6-DoF RRT* runs
#                   (node visits per nearest, memory-touching visits,
#                   SAT tests per pose, wall clock) → BENCH_planner.json
#   corpus_bench  — engine × scenario-family × robot regression matrix
#                   over the seeded 30-scenario corpus → BENCH_corpus.json
#   service_bench — open-loop Poisson-arrival load generator: worker-pool
#                   throughput and latency/queue-wait percentiles at
#                   1/4/8/16/32 workers → BENCH_service.json
#
# Record headline numbers in EXPERIMENTS.md when they move. Extra flags
# are passed to service_bench only; planner_bench and corpus_bench run
# their recorded configurations.
#
# Usage: scripts/bench.sh [--requests N] [--samples N] [--rate R] [--seed N]

set -euo pipefail
cd "$(dirname "$0")/.."

cargo run --release -q -p moped-bench --bin planner_bench -- \
    --samples 4000 --plans 8 --out BENCH_planner.json

cargo run --release -q -p moped-bench --bin corpus_bench -- \
    --samples 900 --out BENCH_corpus.json

cargo run --release -q -p moped-bench --bin service_bench -- \
    --out BENCH_service.json "$@"

echo "bench: OK (BENCH_planner.json, BENCH_corpus.json, BENCH_service.json)"
