#!/usr/bin/env bash
# Machine-readable benchmarks. Two binaries, two JSON artifacts:
#
#   planner_bench — old-vs-new hot-path engines on full 6-DoF RRT* runs
#                   (node visits per nearest, memory-touching visits,
#                   SAT tests per pose, wall clock) → BENCH_planner.json
#   service_bench — worker-pool throughput and latency percentiles at
#                   1/4/8 workers → BENCH_service.json
#
# Record headline numbers in EXPERIMENTS.md when they move. Extra flags
# are passed to service_bench only; planner_bench runs its recorded
# configuration (8 plans x 4000 samples).
#
# Usage: scripts/bench.sh [--batch N] [--samples N]

set -euo pipefail
cd "$(dirname "$0")/.."

cargo run --release -q -p moped-bench --bin planner_bench -- \
    --samples 4000 --plans 8 --out BENCH_planner.json

cargo run --release -q -p moped-bench --bin service_bench -- \
    --out BENCH_service.json "$@"

echo "bench: OK (BENCH_planner.json, BENCH_service.json)"
