#!/usr/bin/env bash
# Service-layer benchmark: batches through the worker pool at 1/4/8
# workers, machine-readable output in BENCH_service.json (throughput and
# latency percentiles per worker count). Record headline numbers in
# EXPERIMENTS.md when they move.
#
# Usage: scripts/bench.sh [--batch N] [--samples N]

set -euo pipefail
cd "$(dirname "$0")/.."

cargo run --release -q -p moped-bench --bin service_bench -- \
    --out BENCH_service.json "$@"

echo "bench: OK (BENCH_service.json)"
