#!/usr/bin/env bash
# Repository verification: the tier-1 gate plus formatting.
#
# Everything builds offline — rand/proptest/criterion are vendored
# API-compatible subsets under vendor/ (see DESIGN.md §2) — so this
# script needs no network access.

set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo build --release =="
cargo build --release

echo "== cargo test -q =="
cargo test -q

echo "== cargo test -q --workspace =="
cargo test -q --workspace

echo "== moped-lint --deny warnings (budget: ${LINT_BUDGET_S:=10}s) =="
# The lint gate must stay cheap enough to run on every PR: fail the
# verify run outright if the workspace sweep (token rules + structural
# passes) blows the wall-time budget. The binary is prebuilt first so
# the budget measures analysis, not compilation.
cargo build -q -p moped-lint
lint_start=$(date +%s%N)
cargo run -q -p moped-lint -- --deny warnings
lint_end=$(date +%s%N)
lint_ms=$(( (lint_end - lint_start) / 1000000 ))
echo "lint wall time: ${lint_ms} ms"
if [ "$lint_ms" -gt $(( LINT_BUDGET_S * 1000 )) ]; then
    echo "verify: FAIL — workspace lint took ${lint_ms} ms (> ${LINT_BUDGET_S}s budget)" >&2
    exit 1
fi

echo "== cargo test -q -p moped-lint =="
cargo test -q -p moped-lint

echo "== planner_bench --smoke =="
cargo run --release -q -p moped-bench --bin planner_bench -- \
    --smoke --out target/planner_smoke.json

echo "== corpus_bench --smoke (autotuning gate) =="
# The binary enforces the smoke acceptance gate: the auto-tuned column
# (per-class calibrated profiles, probe budget 160) must solve at least
# as many smoke scenarios as the static MOPED RRT* stack.
cargo run --release -q -p moped-bench --bin corpus_bench -- \
    --smoke --out target/corpus_smoke.json

echo "== service_bench --smoke (scaling gate) =="
# Tiny open-loop run; the binary itself enforces the gate (4-worker
# throughput >= 1.5x 1-worker on >=4-cpu machines, a no-collapse floor
# on smaller ones) and exits non-zero on failure.
cargo run --release -q -p moped-bench --bin service_bench -- \
    --smoke --out target/service_smoke.json

echo "== cargo fmt --check =="
cargo fmt --check

echo "== cargo clippy --workspace --all-targets -- -D warnings =="
cargo clippy --workspace --all-targets -- -D warnings

echo "verify: OK"
