//! Drone navigation: a 6-DoF free-flying robot in increasingly cluttered
//! 3D environments, showing how MOPED's savings grow with obstacle count
//! (the trend of Fig 14).
//!
//! Run with: `cargo run --example drone_navigation`

use moped::core::{plan_variant, PlannerParams, Variant};
use moped::env::{Scenario, ScenarioParams, OBSTACLE_COUNTS};
use moped::robot::Robot;

fn main() {
    println!("6-DoF drone navigation across environment complexities");
    println!(
        "{:<12} {:>14} {:>14} {:>8} {:>10} {:>10}",
        "obstacles", "baseline MACs", "MOPED MACs", "saving", "base cost", "moped cost"
    );

    let params = PlannerParams {
        max_samples: 1000,
        seed: 11,
        ..PlannerParams::default()
    };

    for &count in &OBSTACLE_COUNTS {
        let scenario = Scenario::generate(
            Robot::drone_3d(),
            &ScenarioParams::with_obstacles(count),
            500 + count as u64,
        );
        let base = plan_variant(&scenario, Variant::V0Baseline, &params);
        let moped = plan_variant(&scenario, Variant::V4Lci, &params);
        let b = base.stats.total_ops().mac_equiv();
        let m = moped.stats.total_ops().mac_equiv();
        println!(
            "{:<12} {:>14} {:>14} {:>7.1}x {:>10.1} {:>10.1}",
            count,
            b,
            m,
            b as f64 / m as f64,
            base.path_cost,
            moped.path_cost
        );
    }

    println!("\nMOPED's computational saving grows with clutter: the R-tree");
    println!("first stage prunes more obstacle checks, and the SI-MBR-Tree");
    println!("keeps neighbor search sub-linear as the exploration tree grows.");
}
