//! Hardware simulation: run a planning workload, replay its round trace
//! through the MOPED performance model, and print the design-point report
//! plus comparisons against the CPU / RRT* ASIC / CODAcc baselines
//! (the Fig 15 / Fig 17 machinery on one workload).
//!
//! Run with: `cargo run --example hw_simulation`

use moped::core::{plan_variant, PlannerParams, Variant};
use moped::env::{Scenario, ScenarioParams};
use moped::hw::design::DesignPoint;
use moped::hw::{perf, pipeline};
use moped::robot::Robot;

fn main() {
    let scenario = Scenario::generate(
        Robot::viperx_300(),
        &ScenarioParams::with_obstacles(16),
        123,
    );
    let params = PlannerParams {
        max_samples: 1000,
        seed: 5,
        trace_rounds: true,
        goal_tolerance: 0.8,
        ..PlannerParams::default()
    };

    println!(
        "Planning: {} in a 16-obstacle field...",
        scenario.robot.name()
    );
    let base = plan_variant(&scenario, Variant::V0Baseline, &params);
    let moped = plan_variant(&scenario, Variant::V4Lci, &params);

    let design = DesignPoint::default();
    println!("\n== Design point (28nm, 1 GHz) ==");
    println!("  MACs       : {}", design.macs());
    println!("  SRAM       : {:.0} KB", design.sram_kb());
    println!("  area       : {:.2} mm^2", design.area_mm2());
    println!("  power      : {:.1} mW", design.power_w() * 1e3);
    for bank in design.banks() {
        println!("    {:<22} {:>6.1} KB", bank.name, bank.kb);
    }

    let m = perf::moped_report(&moped.stats, &design);
    let serial = perf::moped_serial_report(&moped.stats, &design);
    let cpu = perf::cpu_report(&base.stats);
    let asic = perf::rrt_asic_report(&base.stats, &design);
    let cod = perf::codacc_report(&base.stats, &scenario.robot, &design);

    println!("\n== Latency / energy ==");
    for (name, r) in [
        ("MOPED (S&R)", &m),
        ("MOPED serial", &serial),
        ("CPU baseline", &cpu),
        ("RRT* ASIC", &asic),
        ("ASIC+CODAcc", &cod),
    ] {
        println!(
            "  {:<14} {:>10.3} ms {:>12.1} uJ",
            name,
            r.latency_s * 1e3,
            r.energy_j * 1e6
        );
    }

    println!("\n== MOPED vs baselines ==");
    for (name, r) in [("CPU", &cpu), ("RRT* ASIC", &asic), ("ASIC+CODAcc", &cod)] {
        let c = perf::compare(&m, r);
        println!(
            "  vs {:<12} speedup {:>8.1}x  energy-eff {:>8.1}x  area-eff {:>7.1}x",
            name, c.speedup, c.energy_efficiency_gain, c.area_efficiency_gain
        );
    }

    let rounds = pipeline::rounds_from_trace(&moped.stats.rounds);
    let pipe = pipeline::simulate(&rounds);
    println!("\n== Speculate-and-repair pipeline ==");
    println!("  serial cycles      : {}", pipe.serial_cycles);
    println!("  speculative cycles : {}", pipe.speculative_cycles);
    println!("  S&R speedup        : {:.2}x", pipe.speedup());
    println!(
        "  max FIFO occupancy : {} (depth 20)",
        pipe.max_fifo_occupancy
    );
    println!(
        "  max missing nbrs   : {} (capacity 5)",
        pipe.max_missing_neighbors
    );
}
