//! Dynamic replanning: the robot executes its plan while obstacles move,
//! revalidates against predicted snapshots, and replans with the full
//! MOPED stack whenever the path is invalidated — the dynamic-environment
//! use case the paper's related work motivates.
//!
//! Run with: `cargo run --release --example dynamic_replanning`

use moped::core::replan::{run, ReplanParams};
use moped::core::PlannerParams;
use moped::env::dynamic::{default_spin, DynamicScenario};
use moped::env::{Scenario, ScenarioParams};
use moped::robot::Robot;

fn main() {
    println!("Dynamic replanning with moving obstacles (2D mobile robot)\n");
    println!(
        "{:<12} {:>8} {:>7} {:>12} {:>7} {:>10} {:>14}",
        "obst speed", "reached", "plans", "invalidated", "stalls", "sim time", "planner MACs"
    );

    for speed in [0.0, 4.0, 8.0, 16.0] {
        let seeds = [21u64, 22, 23, 24, 25];
        let mut reached = 0usize;
        let mut plans = 0usize;
        let mut invalidations = 0usize;
        let mut stalls = 0usize;
        let mut sim_time = 0.0;
        let mut macs = 0u64;
        for &seed in &seeds {
            let base = Scenario::generate(
                Robot::mobile_2d(),
                &ScenarioParams::with_obstacles(12),
                seed,
            );
            // Spin scales with translation speed so "0 u/s" is truly static.
            let spin = default_spin() * speed / 16.0;
            let dynamic = DynamicScenario::animate(base, speed, spin, seed);
            let planner = PlannerParams {
                max_samples: 800,
                seed: 3,
                ..PlannerParams::default()
            };
            let report = run(&dynamic, &planner, &ReplanParams::default());
            reached += usize::from(report.reached_goal);
            plans += report.plans;
            invalidations += report.invalidations;
            stalls += report.stalls;
            sim_time += report.elapsed_s;
            macs += report.total_ops.mac_equiv();
        }
        let k = seeds.len();
        println!(
            "{:<12} {:>7}/{} {:>7.1} {:>12.1} {:>7.1} {:>9.1}s {:>14}",
            format!("{speed} u/s"),
            reached,
            k,
            plans as f64 / k as f64,
            invalidations as f64 / k as f64,
            stalls as f64 / k as f64,
            sim_time / k as f64,
            macs / k as u64
        );
    }

    println!("\nFaster obstacle fields invalidate plans more often; each replan");
    println!("runs the full MOPED pipeline, whose per-plan cost reduction is");
    println!("what makes this loop feasible in real time.");
}
