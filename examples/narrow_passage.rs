//! Narrow passage: the Fig 5 demonstration. With tilted walls, the loose
//! AABB relaxation of each wall seals the gap (false-positive collisions),
//! while the exact OBB second stage threads it — lower path cost and
//! higher success rate for the OBB-capable checker.
//!
//! Run with: `cargo run --example narrow_passage`

use moped::collision::{CollisionChecker, CollisionLedger, SecondStage, TwoStageChecker};
use moped::core::{PlannerParams, RrtStar, SimbrIndex};
use moped::env::Scenario;
use moped::robot::Robot;

fn main() {
    println!("Narrow-passage planning: OBB vs AABB obstacle representation\n");
    println!(
        "{:<10} {:>12} {:>12} {:>12} {:>12}",
        "tilt", "OBB solved", "OBB cost", "AABB solved", "AABB cost"
    );

    for tilt in [0.0, 0.2, 0.35, 0.5] {
        let scenario = Scenario::narrow_passage(Robot::mobile_2d(), 34.0, tilt);
        let params = PlannerParams {
            max_samples: 3000,
            seed: 9,
            ..PlannerParams::default()
        };

        let exact = TwoStageChecker::new(scenario.obstacles.clone(), 4, SecondStage::ObbExact);
        let loose = TwoStageChecker::new(scenario.obstacles.clone(), 4, SecondStage::AabbOnly);

        let r_exact = RrtStar::new(&scenario, &exact, SimbrIndex::moped(3), params.clone()).plan();
        let r_loose = RrtStar::new(&scenario, &loose, SimbrIndex::moped(3), params.clone()).plan();

        println!(
            "{:<10.2} {:>12} {:>12.1} {:>12} {:>12.1}",
            tilt,
            r_exact.solved(),
            r_exact.path_cost,
            r_loose.solved(),
            r_loose.path_cost
        );
    }

    // Show the false-positive mechanism directly.
    let scenario = Scenario::narrow_passage(Robot::mobile_2d(), 34.0, 0.5);
    let exact = TwoStageChecker::new(scenario.obstacles.clone(), 4, SecondStage::ObbExact);
    let loose = TwoStageChecker::new(scenario.obstacles.clone(), 4, SecondStage::AabbOnly);
    let mid = scenario.start.lerp(&scenario.goal, 0.5);
    let mut ledger = CollisionLedger::default();
    println!("\nGap-center pose:");
    println!(
        "  exact OBB check : {}",
        if exact.config_free(&scenario.robot, &mid, &mut ledger) {
            "free"
        } else {
            "collision"
        }
    );
    println!(
        "  AABB-only check : {}",
        if loose.config_free(&scenario.robot, &mid, &mut ledger) {
            "free"
        } else {
            "collision (false positive)"
        }
    );
}
