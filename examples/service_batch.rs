//! Batch serving demo: 32 plan requests scheduled across 4 workers.
//!
//! Demonstrates the service layer end to end — admission into the bounded
//! queue, deterministic per-seed planning against shared environment
//! snapshots, one deadline-limited request answered with its best-so-far
//! result, and the metrics dump.
//!
//! Run with: `cargo run --release --example service_batch`

use std::time::Duration;

use moped::core::PlannerParams;
use moped::robot::Robot;
use moped::service::{
    EnvironmentCatalog, Outcome, PlanOutcome, PlanRequest, PlanService, ServiceConfig,
};

fn main() {
    let catalog = EnvironmentCatalog::standard(&Robot::mobile_2d());
    let env_ids: Vec<_> = catalog.ids().collect();
    let names: Vec<String> = env_ids
        .iter()
        .map(|&id| catalog.get(id).unwrap().name.clone())
        .collect();

    let config = ServiceConfig {
        workers: 4,
        queue_capacity: 64,
        stop_poll_every: 64,
        ..Default::default()
    };
    let workers = config.workers;
    let service = PlanService::start(catalog, config);
    println!(
        "serving {} environments on {} workers\n",
        env_ids.len(),
        workers
    );

    // 32 requests round-robined over the catalog, each with its own seed.
    // Request 7 gets a 2ms deadline against a huge sampling budget — it
    // must come back early with whatever tree it grew.
    let mut requests = Vec::new();
    for i in 0..32u64 {
        let env = env_ids[i as usize % env_ids.len()];
        let params = PlannerParams {
            max_samples: 800,
            seed: i,
            ..Default::default()
        };
        let req = if i == 7 {
            let big = PlannerParams {
                max_samples: 50_000_000,
                seed: i,
                ..Default::default()
            };
            PlanRequest::new(env, big).with_deadline(Duration::from_millis(2))
        } else {
            PlanRequest::new(env, params)
        };
        requests.push(req);
    }

    let responses = service.run_batch(requests);
    println!(" req  environment       outcome          solved  cost      samples  worker");
    for (i, resp) in responses.iter().enumerate() {
        match resp {
            Ok(PlanOutcome::Served(r)) => {
                let outcome = match r.outcome {
                    Outcome::Completed => "completed",
                    Outcome::DeadlineExpired => "deadline-expired",
                    Outcome::Cancelled => "cancelled",
                };
                println!(
                    "{:4}  {:16}  {:16} {:6}  {:8.1}  {:7}  {:6}",
                    r.id,
                    names[i % names.len()],
                    outcome,
                    r.result.solved(),
                    r.result.path_cost,
                    r.result.stats.samples,
                    r.worker,
                );
            }
            Ok(PlanOutcome::Failed(f)) => println!("{:4}  failed: {}", f.id, f.reason),
            Err(reason) => println!("{i:4}  rejected: {reason}"),
        }
    }

    let metrics = service.shutdown();
    println!("\n--- metrics ---\n{}", metrics.dump_text());
}
