//! Plan gallery: renders SVG snapshots of planner behaviour — the
//! exploration tree, the raw RRT\* path, and the smoothed path — for an
//! open scene and a narrow passage. Output lands in `target/gallery/`.
//!
//! Run with: `cargo run --release --example plan_gallery`

use moped::collision::{CollisionLedger, TwoStageChecker};
use moped::core::{smooth, PlannerParams, RrtStar, SimbrIndex};
use moped::env::{Scenario, ScenarioParams};
use moped::geometry::InterpolationSteps;
use moped::robot::Robot;
use moped::viz::SceneSvg;

fn main() -> std::io::Result<()> {
    let out_dir = std::path::Path::new("target/gallery");
    std::fs::create_dir_all(out_dir)?;

    let scenes = [
        (
            "open_field",
            Scenario::generate(Robot::mobile_2d(), &ScenarioParams::with_obstacles(16), 42),
        ),
        (
            "narrow_passage",
            Scenario::narrow_passage(Robot::mobile_2d(), 30.0, 0.5),
        ),
    ];

    for (name, scenario) in scenes {
        let checker = TwoStageChecker::moped(scenario.obstacles.clone());
        let params = PlannerParams {
            max_samples: 2500,
            seed: 7,
            ..PlannerParams::default()
        };
        let mut planner = RrtStar::new(&scenario, &checker, SimbrIndex::moped(3), params);
        let result = planner.plan();

        // Exploration-tree edges from the planner snapshot.
        let snapshot = planner.tree_snapshot();
        let edges: Vec<_> = snapshot
            .iter()
            .filter_map(|(q, parent, _)| parent.map(|p| (snapshot[p].0, *q)))
            .collect();

        let mut svg = SceneSvg::new(&scenario).with_tree(&edges);
        if let Some(path) = &result.path {
            svg = svg.with_path(path, "#1351d8");
            let steps = InterpolationSteps::with_resolution(1.0);
            let mut ledger = CollisionLedger::default();
            let smoothed =
                smooth::shortcut(path, &scenario.robot, &checker, &steps, 400, 3, &mut ledger);
            svg = svg.with_path(&smoothed.path, "#2d7d46");
            println!(
                "{name}: solved, cost {:.1} -> smoothed {:.1} ({} shortcuts)",
                smoothed.cost_before, smoothed.cost_after, smoothed.shortcuts_applied
            );
        } else {
            println!("{name}: no path found at this budget");
        }

        let file = out_dir.join(format!("{name}.svg"));
        std::fs::write(&file, svg.render())?;
        println!("  wrote {}", file.display());
    }
    Ok(())
}
