//! Observability walkthrough: trace a 3-DoF planning run, print the
//! per-stage profile table, export a Chrome-trace file, and prove the
//! deterministic journal reproduces the run bit for bit.
//!
//! Run with `cargo run --release --example observe`. Open the emitted
//! `target/observe_trace.json` in `chrome://tracing` or
//! <https://ui.perfetto.dev> to see the span timeline.

use moped::collision::TwoStageChecker;
use moped::core::{PlannerParams, RrtStar, SimbrIndex};
use moped::env::{Scenario, ScenarioParams};
use moped::obs;
use moped::robot::Robot;

fn main() {
    // 3-DoF mobile robot (x, y, theta) in a cluttered planar world.
    let scenario = Scenario::generate(Robot::mobile_2d(), &ScenarioParams::with_obstacles(48), 42);
    // A fine collision discretization: each motion check verifies many
    // interpolated poses, the regime the two-stage checker is built for.
    let params = PlannerParams {
        max_samples: 2000,
        interpolation: Some(moped::geometry::InterpolationSteps::with_resolution(0.25)),
        ..PlannerParams::default()
    };

    // Arm the tracer. Wall-clock ticks (nanoseconds) make the profile
    // a real time breakdown; the default logical ticks would give
    // deterministic ordering but meaningless durations.
    obs::reset();
    obs::set_tick_source(obs::TickSource::WallClock);
    obs::set_enabled(true);

    let checker = TwoStageChecker::moped(scenario.obstacles.clone());
    let result = RrtStar::new(&scenario, &checker, SimbrIndex::moped(3), params.clone()).plan();
    obs::set_enabled(false);

    println!(
        "planned: solved={} cost={:.1} nodes={} samples={}",
        result.solved(),
        result.path_cost,
        result.stats.nodes,
        result.stats.samples
    );

    // --- Stage profile table -------------------------------------------
    let profile = obs::snapshot();
    println!("\n{}", profile.render_text());
    if let Some(f) = profile.attributed_fraction() {
        println!(
            "named stages explain {:.1}% of instrumented iteration time",
            100.0 * f
        );
    }

    // --- Chrome trace ---------------------------------------------------
    let (events, dropped) = obs::take_events();
    let trace = obs::export::chrome_trace(&events);
    let path = std::path::Path::new("target").join("observe_trace.json");
    match std::fs::write(&path, &trace) {
        Ok(()) => println!(
            "\nwrote {} span events to {} ({dropped} dropped by the ring)",
            events.len(),
            path.display()
        ),
        Err(e) => println!("\ncould not write {}: {e}", path.display()),
    }

    // --- Deterministic journal replay -----------------------------------
    // A separate journaled run (tracing off): the journal captures the
    // full sample stream, so replaying it reproduces the plan exactly.
    let mut recorder = RrtStar::new(&scenario, &checker, SimbrIndex::moped(3), params.clone())
        .with_journal_recording();
    let recorded = recorder.plan();
    let journal = recorder
        .take_journal()
        .expect("journaling was enabled before plan()");
    let wire = journal.serialize();
    println!(
        "\njournal: {} rounds, {} accepts, {} bytes on the wire",
        journal.rounds(),
        journal.accepts(),
        wire.len()
    );
    let reparsed = obs::Journal::parse(&wire).expect("journal round-trips");
    let mut replayer =
        RrtStar::new(&scenario, &checker, SimbrIndex::moped(3), params).with_replay(&reparsed);
    let replayed = replayer.plan();
    assert_eq!(recorded.path_cost.to_bits(), replayed.path_cost.to_bits());
    assert_eq!(recorded.stats.nodes, replayed.stats.nodes);
    println!(
        "replay: cost {:.6} == {:.6}, nodes {} == {} (bit-identical)",
        recorded.path_cost, replayed.path_cost, recorded.stats.nodes, replayed.stats.nodes
    );
}
