//! Quickstart: plan a 2D mobile-robot path with the full MOPED stack and
//! compare it against the baseline RRT\* on the same task.
//!
//! Run with: `cargo run --example quickstart`

use moped::core::{plan_variant, PlannerParams, Variant};
use moped::env::{Scenario, ScenarioParams};
use moped::robot::Robot;

fn main() {
    let scenario = Scenario::generate(Robot::mobile_2d(), &ScenarioParams::with_obstacles(16), 42);
    println!(
        "Scenario: {} obstacles, start {:?} -> goal {:?}",
        scenario.obstacles.len(),
        scenario.start.as_slice(),
        scenario.goal.as_slice()
    );

    let params = PlannerParams {
        max_samples: 2000,
        seed: 7,
        ..PlannerParams::default()
    };

    for variant in [Variant::V0Baseline, Variant::V4Lci] {
        let result = plan_variant(&scenario, variant, &params);
        let ops = result.stats.total_ops();
        println!("\n== {variant} ==");
        println!("  solved          : {}", result.solved());
        println!("  path cost       : {:.1}", result.path_cost);
        println!("  tree nodes      : {}", result.stats.nodes);
        println!("  MAC-equiv ops   : {}", ops.mac_equiv());
        let (cc, ns, other) = result.stats.breakdown();
        println!(
            "  breakdown       : collision {:.0}% / neighbor search {:.0}% / other {:.0}%",
            cc * 100.0,
            ns * 100.0,
            other * 100.0
        );
        if let Some(path) = &result.path {
            println!("  waypoints       : {}", path.len());
            for (i, q) in path.iter().enumerate().take(5) {
                println!("    [{i}] {:?}", q.as_slice());
            }
            if path.len() > 5 {
                println!("    ... {} more", path.len() - 5);
            }
        }
    }
}
