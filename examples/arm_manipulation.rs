//! Arm manipulation: plan joint-space motions for the three manipulator
//! models (5/6/7 DoF) and show the flexible-dimension support — the same
//! engine, unchanged, across configuration-space sizes.
//!
//! Run with: `cargo run --example arm_manipulation`

use moped::core::{plan_variant, PlannerParams, Variant};
use moped::env::{Scenario, ScenarioParams};
use moped::robot::Robot;

fn main() {
    println!("Joint-space planning across manipulator models\n");

    for robot in [Robot::viperx_300(), Robot::rozum(), Robot::xarm7()] {
        let name = robot.name();
        let dof = robot.dof();
        let bodies = robot.num_bodies();
        let scenario = Scenario::generate(robot, &ScenarioParams::with_obstacles(16), 77);
        let params = PlannerParams {
            max_samples: 1500,
            seed: 3,
            goal_tolerance: 0.8,
            ..PlannerParams::default()
        };
        let base = plan_variant(&scenario, Variant::V0Baseline, &params);
        let moped = plan_variant(&scenario, Variant::V4Lci, &params);

        println!("== {name} ({dof} DoF, {bodies} body boxes) ==");
        println!(
            "  baseline ops : {:>14}",
            base.stats.total_ops().mac_equiv()
        );
        println!(
            "  MOPED ops    : {:>14}",
            moped.stats.total_ops().mac_equiv()
        );
        println!(
            "  saving       : {:>13.1}x",
            base.stats.total_ops().mac_equiv() as f64
                / moped.stats.total_ops().mac_equiv().max(1) as f64
        );
        println!(
            "  solved       : baseline {} / MOPED {}",
            base.solved(),
            moped.solved()
        );
        if let Some(path) = &moped.path {
            // Show the end-effector sweep of the planned joint path.
            let ee_start = scenario.robot.end_effector(&path[0]);
            let ee_goal = scenario.robot.end_effector(path.last().unwrap());
            println!(
                "  end effector : {:?} -> {:?} over {} waypoints",
                ee_start,
                ee_goal,
                path.len()
            );
        }
        println!();
    }

    println!("Higher-DoF models spend more per distance calculation and per");
    println!("FK body box, which is exactly where MOPED's reductions bite.");
}
