//! Fault-tolerance demo: chaos-inject panics, worker kills, and latency
//! into the serving layer and watch it hold its contract.
//!
//! A 24-request batch runs against a fault plan that panics every 5th
//! planning attempt, kills one worker outright, and delays every 7th
//! attempt — with a retry policy that absorbs transient faults. Every
//! ticket still resolves, non-faulted results stay deterministic, and
//! the supervisor respawns the killed worker so the pool ends at full
//! capacity.
//!
//! Run with: `cargo run --release --example service_faults`

use std::sync::Arc;
use std::time::Duration;

use moped::core::PlannerParams;
use moped::robot::Robot;
use moped::service::{
    EnvironmentCatalog, FaultPlan, FaultSite, PlanOutcome, PlanRequest, PlanService, RetryPolicy,
    ServiceConfig,
};

fn main() {
    let catalog = EnvironmentCatalog::standard(&Robot::mobile_2d());
    let env_ids: Vec<_> = catalog.ids().collect();
    let names: Vec<String> = env_ids
        .iter()
        .map(|&id| catalog.get(id).unwrap().name.clone())
        .collect();

    // The chaos plan: every 5th planning attempt panics (caught by the
    // per-job guard), the 4th dequeue kills its worker outright
    // (supervisor respawns it), and every 7th attempt gains 5ms of
    // artificial latency.
    let faults = Arc::new(
        FaultPlan::new()
            .panic_every(FaultSite::Planning, 5)
            .kill_worker_every(4, 1)
            .delay_every(FaultSite::Planning, Duration::from_millis(5), 7),
    );
    let config = ServiceConfig {
        workers: 4,
        queue_capacity: 64,
        stop_poll_every: 64,
        retry: RetryPolicy::attempts(2).with_backoff(Duration::from_millis(1)),
        faults: Some(faults),
        tuner: None,
    };
    let workers = config.workers;
    let service = PlanService::start(catalog, config);
    println!(
        "serving {} environments on {} workers, chaos plan armed\n",
        env_ids.len(),
        workers
    );

    let requests: Vec<PlanRequest> = (0..24u64)
        .map(|i| {
            let params = PlannerParams {
                max_samples: 500,
                seed: i,
                ..Default::default()
            };
            PlanRequest::new(env_ids[i as usize % env_ids.len()], params)
        })
        .collect();

    let outcomes = service.run_batch(requests);
    println!(" req  environment       resolution        attempts  cost      samples");
    for (i, outcome) in outcomes.iter().enumerate() {
        match outcome {
            Ok(PlanOutcome::Served(r)) => println!(
                "{:4}  {:16}  {:16} {:9}  {:8.1}  {:7}",
                r.id,
                names[i % names.len()],
                "served",
                r.attempts,
                r.result.path_cost,
                r.result.stats.samples,
            ),
            Ok(PlanOutcome::Failed(f)) => println!(
                "{:4}  {:16}  {:16} {:9}  ({})",
                f.id,
                names[i % names.len()],
                "failed",
                f.attempts,
                f.reason,
            ),
            Err(reason) => println!("{i:4}  rejected: {reason}"),
        }
    }

    // Give the supervisor a beat to finish respawning, then show that
    // capacity was restored.
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    while service.alive_workers() < service.worker_count() && std::time::Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(1));
    }
    println!(
        "\npool capacity: {}/{} workers alive",
        service.alive_workers(),
        service.worker_count()
    );

    let metrics = service.shutdown();
    println!("\n--- metrics ---\n{}", metrics.dump_text());
}
