//! # MOPED — Efficient Motion Planning Engine with Flexible Dimension Support
//!
//! A full reproduction of the HPCA'24 MOPED algorithm/hardware co-design:
//! an RRT\* motion-planning engine accelerated by a two-stage collision
//! scheme, the SI-MBR-Tree neighbor index with steering-informed
//! approximated search and O(1) insertion, a speculate-and-repair pipeline
//! model, and hierarchical multi-level caching.
//!
//! This facade crate re-exports the public API of every subsystem:
//!
//! * [`geometry`] — OBB/AABB geometry, SAT kernels, MINDIST, op counting
//! * [`robot`] — the five evaluation robot models (3–7 DoF)
//! * [`mod@env`] — scenario generation (random fields, narrow passages)
//! * [`scenarios`] — the seeded procedural scenario corpus (narrow
//!   passages, mazes, clutter, shelf rooms, moving-obstacle epochs)
//! * [`rtree`] — the static STR-bulk-loaded obstacle R-tree
//! * [`simbr`] — the SI-MBR-Tree
//! * [`kdtree`] — the KD-tree neighbor-search baseline
//! * [`octree`] — the octree occupancy baseline (§VI comparison)
//! * [`eval`] — evaluation-suite runner and summary statistics
//! * [`viz`] — SVG rendering of planar scenes and paths
//! * [`collision`] — naive and two-stage motion collision checkers
//! * [`core`] — the RRT\* planner and the V0–V4 variant ladder
//! * [`hw`] — the 28nm hardware performance model and baselines
//! * [`service`] — the concurrent batch planning engine (worker pool,
//!   bounded admission queue, deadlines, cancellation, metrics)
//! * [`obs`] — observability: stage spans, the profiler, the
//!   deterministic event journal, and the trace exporters
//!
//! # Quickstart
//!
//! ```
//! use moped::core::{plan_variant, PlannerParams, Variant};
//! use moped::env::{Scenario, ScenarioParams};
//! use moped::robot::Robot;
//!
//! let scenario = Scenario::generate(
//!     Robot::mobile_2d(),
//!     &ScenarioParams::with_obstacles(8),
//!     42,
//! );
//! let params = PlannerParams { max_samples: 500, ..PlannerParams::default() };
//! let result = plan_variant(&scenario, Variant::V4Lci, &params);
//! println!("solved: {}, cost: {:.1}", result.solved(), result.path_cost);
//! ```

#![deny(missing_docs)]

pub use moped_collision as collision;
pub use moped_core as core;
pub use moped_env as env;
pub use moped_eval as eval;
pub use moped_geometry as geometry;
pub use moped_hw as hw;
pub use moped_kdtree as kdtree;
pub use moped_obs as obs;
pub use moped_octree as octree;
pub use moped_robot as robot;
pub use moped_rtree as rtree;
pub use moped_scenarios as scenarios;
pub use moped_service as service;
pub use moped_simbr as simbr;
pub use moped_tune as tune;
pub use moped_viz as viz;
