//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the subset of the `proptest 1.x` API its property tests use:
//! the [`proptest!`] macro (with `#![proptest_config(..)]`), range and
//! tuple strategies, [`Strategy::prop_map`], `prop::collection::vec`,
//! [`any`], [`Just`], and the `prop_assert*` / `prop_assume!` macros.
//!
//! Semantics match upstream with one deliberate exception: failing cases
//! are **not shrunk** — the panic message reports the case index and the
//! deterministic per-test seed instead, which is enough to reproduce
//! (case streams are fixed per test name).

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

use rand::rngs::StdRng;
use rand::{Rng, SampleRange, SeedableRng, Standard};

/// Everything a property-test file needs in scope.
pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Just,
        ProptestConfig, Strategy,
    };
}

/// Strategy combinators namespace (mirrors `proptest::prelude::prop`).
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        pub use crate::collection::vec;
    }
}

/// Runner configuration.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` random cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// The random source handed to strategies (deterministic per test).
#[derive(Clone, Debug)]
pub struct TestRng(StdRng);

impl TestRng {
    /// A generator whose stream is a pure function of `name` — each
    /// property test replays the same case sequence every run.
    pub fn deterministic(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325; // FNV-1a
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        TestRng(StdRng::seed_from_u64(h))
    }
}

impl rand::RngCore for TestRng {
    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
}

/// Why a property case did not pass.
#[derive(Clone, Debug)]
pub enum TestCaseError {
    /// The case failed an assertion.
    Fail(String),
    /// The case was discarded by `prop_assume!`.
    Reject,
}

impl TestCaseError {
    /// A failure with the given message.
    pub fn fail(msg: String) -> Self {
        TestCaseError::Fail(msg)
    }

    /// A discarded (assumption-violating) case.
    pub fn reject() -> Self {
        TestCaseError::Reject
    }
}

/// A generator of random values of one type.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// The [`Strategy::prop_map`] combinator.
#[derive(Clone, Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// A strategy producing one fixed value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

impl<T: Clone> Strategy for Range<T>
where
    Range<T>: SampleRange<T>,
{
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        rng.gen_range(self.clone())
    }
}

impl<T: Clone> Strategy for RangeInclusive<T>
where
    RangeInclusive<T>: SampleRange<T>,
{
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        rng.gen_range(self.clone())
    }
}

macro_rules! tuple_strategy {
    ($($s:ident.$idx:tt),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}
tuple_strategy!(A.0);
tuple_strategy!(A.0, B.1);
tuple_strategy!(A.0, B.1, C.2);
tuple_strategy!(A.0, B.1, C.2, D.3);
tuple_strategy!(A.0, B.1, C.2, D.3, E.4);
tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5);

/// The strategy behind [`any`].
#[derive(Clone, Debug, Default)]
pub struct AnyStrategy<T>(PhantomData<T>);

impl<T: Standard> Strategy for AnyStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        rng.gen()
    }
}

/// A strategy over the full standard distribution of `T`
/// (`bool` fair coin, `f64` unit interval, integers full range).
pub fn any<T: Standard>() -> AnyStrategy<T> {
    AnyStrategy(PhantomData)
}

/// Collection strategies.
pub mod collection {
    use super::{Rng, Strategy, TestRng};
    use std::ops::{Range, RangeInclusive};

    /// Element-count specification for [`vec`]: a fixed size or a range.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // inclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// The strategy behind [`vec`].
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = rng.gen_range(self.size.lo..=self.size.hi);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// A strategy producing vectors of `element` with a length drawn
    /// from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

/// Asserts a condition inside a property, recording a failure (instead
/// of panicking) so the runner can attribute it to the current case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// [`prop_assert!`] for equality, printing both operands on failure.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, "assertion failed: `{:?} == {:?}`", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, "{}: `{:?} == {:?}`", format!($($fmt)+), l, r);
    }};
}

/// [`prop_assert!`] for inequality.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l != *r, "assertion failed: `{:?} != {:?}`", l, r);
    }};
}

/// Discards the current case when `cond` is false (the case counts as
/// neither a pass nor a failure).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::reject());
        }
    };
}

/// Declares property tests: each `fn name(pat in strategy, ..) { body }`
/// becomes a `#[test]` running `cases` random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = $cfg:expr; $($(#[$meta:meta])* fn $name:ident($($pat:pat in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            #[test]
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::TestRng::deterministic(stringify!($name));
                let mut rejected: u32 = 0;
                for case in 0..config.cases {
                    let outcome: ::core::result::Result<(), $crate::TestCaseError> = (|| {
                        $(let $pat = $crate::Strategy::generate(&($strat), &mut rng);)*
                        $body
                        ::core::result::Result::Ok(())
                    })();
                    match outcome {
                        ::core::result::Result::Ok(()) => {}
                        ::core::result::Result::Err($crate::TestCaseError::Reject) => {
                            rejected += 1;
                            if rejected > config.cases * 16 {
                                panic!("too many prop_assume! rejections");
                            }
                        }
                        ::core::result::Result::Err($crate::TestCaseError::Fail(msg)) => {
                            panic!(
                                "proptest `{}` failed at case {case}/{}: {msg}",
                                stringify!($name),
                                config.cases,
                            );
                        }
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn even() -> impl Strategy<Value = u64> {
        (0u64..1000).prop_map(|v| v * 2)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        fn ranges_and_maps(v in even(), f in -1.0..1.0f64, b in any::<bool>()) {
            prop_assert!(v.is_multiple_of(2));
            prop_assert!((-1.0..1.0).contains(&f));
            let _ = b;
        }

        fn tuples_and_vecs((a, b) in (0u32..10, 0u32..10), xs in prop::collection::vec(0i64..5, 2..9)) {
            prop_assert!(a < 10 && b < 10);
            prop_assert!(xs.len() >= 2 && xs.len() < 9);
            prop_assert!(xs.iter().all(|&x| x < 5));
        }

        fn assume_discards(v in 0u64..100) {
            prop_assume!(v % 3 == 0);
            prop_assert_eq!(v % 3, 0);
        }
    }

    #[test]
    fn deterministic_streams() {
        let mut a = crate::TestRng::deterministic("x");
        let mut b = crate::TestRng::deterministic("x");
        let s = 0u64..1_000_000;
        for _ in 0..32 {
            assert_eq!(s.generate(&mut a), s.generate(&mut b));
        }
    }
}
