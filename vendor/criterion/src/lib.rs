//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the subset of the `criterion 0.5` API its benches use:
//! [`Criterion::bench_function`], [`Criterion::benchmark_group`],
//! [`BenchmarkGroup::bench_with_input`], [`BenchmarkId`], [`black_box`],
//! and the [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Measurement is a simple calibrated wall-clock loop: each benchmark is
//! warmed up, then timed over enough iterations to fill a measurement
//! window, and the per-iteration mean/min are printed to stdout. No
//! statistical analysis, plots, or HTML reports — the numbers are meant
//! for relative comparisons within one run.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifier for one benchmark within a group: a function name plus a
/// parameter rendered into the label (`name/param`).
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// An id labelled `{name}/{parameter}`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", name.into(), parameter),
        }
    }

    /// An id labelled by the parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

/// Anything accepted as a benchmark label.
pub trait IntoBenchmarkLabel {
    /// The rendered label.
    fn into_label(self) -> String;
}

impl IntoBenchmarkLabel for BenchmarkId {
    fn into_label(self) -> String {
        self.label
    }
}

impl IntoBenchmarkLabel for &str {
    fn into_label(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkLabel for String {
    fn into_label(self) -> String {
        self
    }
}

/// Drives the timing loop of a single benchmark.
pub struct Bencher {
    iters_done: u64,
    elapsed: Duration,
    min_iter: Duration,
    measurement_time: Duration,
}

impl Bencher {
    /// Times `routine` repeatedly and records per-iteration statistics.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warmup + calibration: how many iterations fit the window?
        let cal_start = Instant::now();
        black_box(routine());
        let one = cal_start.elapsed().max(Duration::from_nanos(1));
        let target = (self.measurement_time.as_nanos() / one.as_nanos()).clamp(1, 1_000_000) as u64;

        for _ in 0..target {
            let start = Instant::now();
            black_box(routine());
            let dt = start.elapsed();
            self.elapsed += dt;
            self.iters_done += 1;
            if dt < self.min_iter {
                self.min_iter = dt;
            }
        }
    }
}

fn run_bench(label: &str, measurement_time: Duration, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher {
        iters_done: 0,
        elapsed: Duration::ZERO,
        min_iter: Duration::MAX,
        measurement_time,
    };
    f(&mut b);
    if b.iters_done == 0 {
        println!("{label:<40} (no iterations recorded)");
        return;
    }
    let mean = b.elapsed / b.iters_done as u32;
    println!(
        "{label:<40} mean {:>12?}  min {:>12?}  ({} iters)",
        mean, b.min_iter, b.iters_done
    );
}

/// The benchmark harness entry point.
pub struct Criterion {
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            measurement_time: Duration::from_millis(500),
        }
    }
}

impl Criterion {
    /// Runs a standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        label: impl IntoBenchmarkLabel,
        mut f: F,
    ) -> &mut Self {
        run_bench(&label.into_label(), self.measurement_time, &mut f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            measurement_time: self.measurement_time,
            _parent: self,
        }
    }
}

/// A named group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    measurement_time: Duration,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Upstream tunes statistics sample counts; here the knob shortens
    /// or lengthens the measurement window proportionally (100 = 1x).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.measurement_time = Duration::from_millis((500 * n as u64 / 100).max(50));
        self
    }

    /// Sets the measurement window directly.
    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.measurement_time = t;
        self
    }

    /// Runs a benchmark inside the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        label: impl IntoBenchmarkLabel,
        mut f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, label.into_label());
        run_bench(&full, self.measurement_time, &mut f);
        self
    }

    /// Runs a benchmark parameterized by `input`.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        label: impl IntoBenchmarkLabel,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, label.into_label());
        run_bench(&full, self.measurement_time, &mut |b| f(b, input));
        self
    }

    /// Ends the group (upstream flushes reports here; a no-op).
    pub fn finish(self) {}
}

/// Declares a group of benchmark functions runnable by
/// [`criterion_main!`].
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `main()` running the given benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_routine() {
        let mut c = Criterion {
            measurement_time: Duration::from_millis(5),
        };
        let mut hits = 0u64;
        c.bench_function("smoke", |b| b.iter(|| hits += 1));
        assert!(hits > 0);
    }

    #[test]
    fn groups_and_ids_render() {
        let mut c = Criterion {
            measurement_time: Duration::from_millis(2),
        };
        let mut g = c.benchmark_group("g");
        g.sample_size(10);
        g.bench_with_input(BenchmarkId::new("param", 4), &4usize, |b, &n| {
            b.iter(|| black_box(n * 2))
        });
        g.finish();
    }
}
