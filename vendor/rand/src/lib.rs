//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the *subset* of the `rand 0.8` API it actually uses:
//! [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], [`Rng::gen`],
//! [`Rng::gen_range`] (half-open and inclusive ranges over floats and
//! integers) and [`Rng::gen_bool`].
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — a different
//! stream than upstream `StdRng` (ChaCha12), but with the same contract
//! the workspace relies on: high statistical quality and full determinism
//! in the seed. All in-repo tests are calibrated against this stream.

use std::ops::{Range, RangeInclusive};

/// Random number generators (mirrors `rand::rngs`).
pub mod rngs {
    /// A deterministic, seedable generator (xoshiro256++).
    ///
    /// Named `StdRng` for drop-in compatibility with `rand 0.8` call
    /// sites; the underlying algorithm differs from upstream, which only
    /// matters if bit-exact cross-library streams are required.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        pub(crate) s: [u64; 4],
    }
}

use rngs::StdRng;

/// The core of any generator: a source of uniform 64-bit words.
pub trait RngCore {
    /// Returns the next uniform 64-bit word of the stream.
    fn next_u64(&mut self) -> u64;
}

impl RngCore for StdRng {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        // xoshiro256++ (Blackman & Vigna, public domain reference).
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

/// Construction of a generator from seed material.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `state`.
    fn seed_from_u64(state: u64) -> Self;
}

impl SeedableRng for StdRng {
    fn seed_from_u64(state: u64) -> Self {
        // SplitMix64 expansion, the recommended seeding procedure for
        // xoshiro-family generators.
        let mut x = state;
        let mut next = move || {
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        StdRng {
            s: [next(), next(), next(), next()],
        }
    }
}

/// Types samplable uniformly from their "standard" distribution
/// (`f64` in `[0, 1)`, `bool` fair, integers over their full range).
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 explicit mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for bool {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            #[inline]
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Range types [`Rng::gen_range`] accepts.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty, matching `rand 0.8`.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let u = f64::sample_standard(rng) as $t;
                self.start + u * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let u = f64::sample_standard(rng) as $t;
                lo + u * (hi - lo)
            }
        }
    )*};
}
float_range!(f64, f32);

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}
int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// User-facing sampling methods, blanket-implemented for every source.
pub trait Rng: RngCore {
    /// Draws a value from the type's standard distribution.
    #[inline]
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Draws uniformly from `range` (half-open or inclusive).
    #[inline]
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore> Rng for R {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_in_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn f64_is_unit_interval() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let v: f64 = rng.gen();
            assert!((0.0..1.0).contains(&v));
            sum += v;
        }
        assert!((sum / 10_000.0 - 0.5).abs() < 0.02, "mean should be ~0.5");
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..1000 {
            let f = rng.gen_range(-3.5..2.5);
            assert!((-3.5..2.5).contains(&f));
            let fi = rng.gen_range(-1.0..=1.0);
            assert!((-1.0..=1.0).contains(&fi));
            let u = rng.gen_range(5usize..9);
            assert!((5..9).contains(&u));
            let i = rng.gen_range(-4i64..=4);
            assert!((-4..=4).contains(&i));
        }
    }

    #[test]
    fn integer_ranges_hit_all_values() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[rng.gen_range(0usize..4)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((hits as f64 / 10_000.0 - 0.25).abs() < 0.02);
    }
}
